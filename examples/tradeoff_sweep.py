#!/usr/bin/env python3
"""The relevance/diversity trade-off, made visible (Section 3.2's λ).

Sweeps λ from 0 (pure relevance) to 1 (pure diversity) on the gift
workload, prints the optimum's raw bi-criteria coordinates per λ, and
overlays the exact Pareto frontier — showing that every swept optimum is
Pareto-optimal and how λ walks the frontier.  Finishes with the
constrained-hardness demonstrator of Theorem 9.3 (our verified
construction for the lower bound whose proof sits in the paper's
e-appendix).
"""

from repro import core
from repro.core.tradeoff import lambda_sweep, pareto_front, render_sweep
from repro.logic.cnf import ThreeSatInstance, cnf
from repro.reductions import constraints_hardness


def main() -> None:
    from repro.workloads.synthetic import random_instance
    from repro.core.objectives import ObjectiveKind

    instance = random_instance(
        n=14, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=9
    )

    print("λ-sweep of exact F_MS optima (random metric workload, k = 4):\n")
    entries = lambda_sweep(instance, grid=[0.0, 0.2, 0.4, 0.6, 0.8, 1.0])
    print(render_sweep(entries))

    front = pareto_front(instance)
    print(f"\nPareto frontier: {len(front)} non-dominated 4-sets "
          f"(of {sum(1 for _ in instance.candidate_sets())} candidates)")
    on_front = {
        (round(p.relevance, 9), round(p.diversity, 9)) for p in front
    }
    swept = sum(
        1
        for e in entries
        if (round(e.point.relevance, 9), round(e.point.diversity, 9)) in on_front
    )
    print(f"swept optima on the frontier: {swept}/{len(entries)}")

    # Theorem 9.3, live: fixed Σ, satisfiability decided by QRD.
    print("\nTheorem 9.3 flip (fixed Q and Σ, data carries the 3SAT instance):")
    satisfiable = ThreeSatInstance(cnf([1, 2, 3], [-1, -2, 3], [1, -2, -3]))
    unsat = ThreeSatInstance(cnf([1], [-1, 2], [-2]))
    for label, phi in (("satisfiable ϕ", satisfiable), ("unsatisfiable ϕ", unsat)):
        reduced = constraints_hardness.reduce_3sat_to_constrained_qrd(phi)
        with_sigma = core.qrd_brute_force(reduced.instance, reduced.bound)
        without = constraints_hardness.unconstrained_control(phi)
        print(f"  {label:16s}: QRD with Σ = {with_sigma!s:5s} "
              f"(tracks ϕ); without Σ = {without} (PTIME, always trivial)")
        assert constraints_hardness.verify_reduction(phi)


if __name__ == "__main__":
    main()
