#!/usr/bin/env python3
"""Quickstart: diversified gift recommendation (Examples 1.1 / 3.1).

Peter wants 5 gift suggestions in the $20–$30 range: as relevant as
possible (by historical ratings for similar recipients) and as diverse
as possible (by gift type).  This script walks the full public API:

1. build the database and the query (CQ and FO variants);
2. build δ_rel, δ_dis and the three objective functions;
3. solve the function problem exactly and heuristically;
4. ask the three analysis problems QRD / DRP / RDC.
"""

from repro import core
from repro.relational import evaluate
from repro.workloads import gifts


def main() -> None:
    db = gifts.generate(num_items=24, num_history=90, seed=7)

    # -- 1. queries ------------------------------------------------------
    cq = gifts.peter_query_cq(low=20, high=60)
    fo = gifts.peter_query(buyer="buyer01", recipient="recipient01", low=20, high=60)
    print(f"CQ answer set:  {len(evaluate(cq, db))} gifts "
          f"(language: {cq.language.value})")
    print(f"FO answer set:  {len(evaluate(fo, db))} gifts "
          f"(language: {fo.language.value}; excludes Peter's past gifts)")

    # -- 2. scoring ------------------------------------------------------
    relevance = gifts.relevance_from_history(db)
    distance = gifts.type_distance(db)

    # -- 3. diversify under each objective -------------------------------
    k = 5
    for objective in (
        core.Objective.max_sum(relevance, distance, lam=0.5),
        core.Objective.max_min(relevance, distance, lam=0.5),
        core.Objective.mono(relevance, distance, lam=0.5),
    ):
        instance = core.make_instance(cq, db, k=k, objective=objective)
        exact = core.diversify(instance, method="exact")
        assert exact is not None
        value, picks = exact
        names = ", ".join(row["item"] for row in picks)
        print(f"\n{objective.kind.value:7s} exact optimum F = {value:8.3f}: {names}")
        for method in ("greedy", "mmr", "local-search"):
            if objective.kind is core.ObjectiveKind.MONO and method == "greedy":
                continue  # greedy == exact for the modular objective
            heuristic = core.diversify(instance, method=method)
            assert heuristic is not None
            ratio = heuristic[0] / value if value else 1.0
            print(f"         {method:12s} F = {heuristic[0]:8.3f} "
                  f"({100 * ratio:5.1f}% of optimum)")

    # -- 4. the three analysis problems -----------------------------------
    objective = core.Objective.max_sum(relevance, distance, lam=0.5)
    instance = core.make_instance(cq, db, k=k, objective=objective)
    best = core.diversify(instance, method="exact")
    assert best is not None
    bound = 0.9 * best[0]

    print(f"\nQRD: is there a 5-set with F ≥ {bound:.3f}?",
          core.decide(instance, bound))
    print(f"RDC: how many 5-sets reach it? ",
          core.count(instance, bound))
    greedy_pick = core.diversify(instance, method="greedy")
    assert greedy_pick is not None
    print(f"DRP: rank of the greedy pick = {core.rank(instance, greedy_pick[1])}")


if __name__ == "__main__":
    main()
