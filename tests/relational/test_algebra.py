"""Tests for the relational-algebra operators, including cross-checks
against the logical evaluator (SPC/SPCU ≡ CQ/UCQ, Section 4.1)."""

import pytest

from repro.relational import algebra, builder as qb
from repro.relational.evaluate import evaluate
from repro.relational.schema import Database, Relation, RelationSchema, SchemaError
from repro.relational.terms import ComparisonOp


@pytest.fixture
def r():
    schema = RelationSchema("r", ("a", "b"))
    return Relation(schema, [(1, "x"), (2, "y"), (3, "x")])


@pytest.fixture
def s():
    schema = RelationSchema("s", ("b", "c"))
    return Relation(schema, [("x", 10), ("y", 20), ("z", 30)])


def values_of(relation):
    return {row.values for row in relation.rows}


class TestOperators:
    def test_select(self, r):
        out = algebra.select(r, lambda row: row["b"] == "x")
        assert values_of(out) == {(1, "x"), (3, "x")}

    def test_select_compare(self, r):
        out = algebra.select_compare(r, "a", ComparisonOp.GE, 2)
        assert values_of(out) == {(2, "y"), (3, "x")}

    def test_project(self, r):
        out = algebra.project(r, ("b",))
        assert values_of(out) == {("x",), ("y",)}  # set semantics

    def test_project_reorder(self, r):
        out = algebra.project(r, ("b", "a"))
        assert (("x", 1)) in values_of(out)

    def test_rename(self, r):
        out = algebra.rename(r, {"a": "id"})
        assert out.schema.attributes == ("id", "b")
        assert values_of(out) == values_of(r)

    def test_product(self, r, s):
        out = algebra.product(r, s)
        assert len(out) == 9
        assert out.schema.arity == 4

    def test_product_disambiguates_shared_attributes(self, r):
        out = algebra.product(r, r)
        assert "r.a" in out.schema.attributes

    def test_natural_join(self, r, s):
        out = algebra.natural_join(r, s)
        assert values_of(out) == {(1, "x", 10), (3, "x", 10), (2, "y", 20)}

    def test_natural_join_no_shared_is_product(self, r):
        t = Relation(RelationSchema("t", ("d",)), [(7,)])
        out = algebra.natural_join(r, t)
        assert len(out) == len(r)

    def test_union(self, r):
        other = Relation(RelationSchema("r2", ("a", "b")), [(9, "q"), (1, "x")])
        out = algebra.union(r, other)
        assert len(out) == 4

    def test_union_arity_mismatch(self, r, s):
        t = Relation(RelationSchema("t", ("d",)), [(7,)])
        with pytest.raises(SchemaError):
            algebra.union(r, t)

    def test_difference(self, r):
        other = Relation(RelationSchema("r2", ("a", "b")), [(1, "x")])
        out = algebra.difference(r, other)
        assert values_of(out) == {(2, "y"), (3, "x")}

    def test_intersection(self, r):
        other = Relation(RelationSchema("r2", ("a", "b")), [(1, "x"), (9, "z")])
        out = algebra.intersection(r, other)
        assert values_of(out) == {(1, "x")}

    def test_join_commutative_on_values(self, r, s):
        left = algebra.natural_join(r, s)
        right = algebra.natural_join(s, r)
        def normalized(rel, attrs):
            return {tuple(row[a] for a in attrs) for row in rel.rows}
        attrs = ("a", "b", "c")
        assert normalized(left, attrs) == normalized(right, attrs)


class TestAlgebraVsLogic:
    """The SPC operators must agree with CQ evaluation (Section 4.1)."""

    def test_join_matches_cq(self, r, s):
        db = Database([r, s])
        q = qb.query(
            ["a", "b", "c"],
            qb.conj(qb.atom("r", "?a", "?b"), qb.atom("s", "?b", "?c")),
        )
        logical = {row.values for row in evaluate(q, db).rows}
        algebraic = values_of(algebra.natural_join(r, s))
        assert logical == algebraic

    def test_selection_matches_cq(self, r):
        db = Database([r])
        q = qb.query(
            ["a", "b"],
            qb.conj(qb.atom("r", "?a", "?b"), qb.cmp("?a", ">=", 2)),
        )
        logical = {row.values for row in evaluate(q, db).rows}
        algebraic = values_of(algebra.select_compare(r, "a", ComparisonOp.GE, 2))
        assert logical == algebraic

    def test_union_matches_ucq(self, r):
        r2 = Relation(RelationSchema("r2", ("a", "b")), [(9, "q")])
        db = Database([r, r2])
        q = qb.query(
            ["a", "b"],
            qb.disj(qb.atom("r", "?a", "?b"), qb.atom("r2", "?a", "?b")),
        )
        logical = {row.values for row in evaluate(q, db).rows}
        algebraic = values_of(algebra.union(r, r2))
        assert logical == algebraic

    def test_difference_matches_fo(self, r):
        r2 = Relation(RelationSchema("r2", ("a", "b")), [(1, "x"), (2, "y")])
        db = Database([r, r2])
        q = qb.query(
            ["a", "b"],
            qb.conj(qb.atom("r", "?a", "?b"), qb.neg(qb.atom("r2", "?a", "?b"))),
        )
        logical = {row.values for row in evaluate(q, db).rows}
        algebraic = values_of(algebra.difference(r, r2))
        assert logical == algebraic
