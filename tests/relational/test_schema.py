"""Unit tests for schemas, rows, relations and databases."""

import pytest

from repro.relational.schema import (
    Database,
    Relation,
    RelationSchema,
    Row,
    SchemaError,
)


class TestRelationSchema:
    def test_basic_construction(self):
        schema = RelationSchema("catalog", ("item", "price"))
        assert schema.name == "catalog"
        assert schema.arity == 2
        assert schema.attributes == ("item", "price")

    def test_position_lookup(self):
        schema = RelationSchema("r", ("a", "b", "c"))
        assert schema.position("a") == 0
        assert schema.position("c") == 2

    def test_position_unknown_attribute_raises(self):
        schema = RelationSchema("r", ("a",))
        with pytest.raises(SchemaError, match="no attribute"):
            schema.position("zzz")

    def test_has_attribute(self):
        schema = RelationSchema("r", ("a", "b"))
        assert schema.has_attribute("a")
        assert not schema.has_attribute("x")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            RelationSchema("r", ("a", "a"))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ("a",))

    def test_zero_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ())

    def test_row_positional(self):
        schema = RelationSchema("r", ("a", "b"))
        row = schema.row(1, 2)
        assert row["a"] == 1 and row["b"] == 2

    def test_row_named(self):
        schema = RelationSchema("r", ("a", "b"))
        row = schema.row(b=2, a=1)
        assert row.values == (1, 2)

    def test_row_named_missing_raises(self):
        schema = RelationSchema("r", ("a", "b"))
        with pytest.raises(SchemaError, match="missing"):
            schema.row(a=1)

    def test_row_named_extra_raises(self):
        schema = RelationSchema("r", ("a",))
        with pytest.raises(SchemaError, match="unknown"):
            schema.row(a=1, b=2)

    def test_rename(self):
        schema = RelationSchema("r", ("a",))
        renamed = schema.rename("s")
        assert renamed.name == "s"
        assert renamed.attributes == schema.attributes

    def test_equality_and_hash(self):
        a = RelationSchema("r", ("x", "y"))
        b = RelationSchema("r", ("x", "y"))
        c = RelationSchema("r", ("y", "x"))
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestRow:
    def test_arity_mismatch_raises(self):
        schema = RelationSchema("r", ("a", "b"))
        with pytest.raises(SchemaError, match="arity"):
            Row(schema, (1,))

    def test_attribute_and_positional_access(self):
        schema = RelationSchema("r", ("a", "b"))
        row = Row(schema, (10, 20))
        assert row["b"] == 20
        assert row.at(0) == 10

    def test_as_dict(self):
        schema = RelationSchema("r", ("a", "b"))
        assert Row(schema, (1, 2)).as_dict() == {"a": 1, "b": 2}

    def test_project(self):
        schema = RelationSchema("r", ("a", "b", "c"))
        row = Row(schema, (1, 2, 3)).project(("c", "a"))
        assert row.values == (3, 1)

    def test_rows_compare_by_values_and_attributes(self):
        s1 = RelationSchema("r", ("a", "b"))
        s2 = RelationSchema("other", ("a", "b"))
        assert Row(s1, (1, 2)) == Row(s2, (1, 2))
        s3 = RelationSchema("r", ("x", "y"))
        assert Row(s1, (1, 2)) != Row(s3, (1, 2))

    def test_rows_hashable(self):
        schema = RelationSchema("r", ("a",))
        assert len({Row(schema, (1,)), Row(schema, (1,)), Row(schema, (2,))}) == 2


class TestRelation:
    def test_add_and_contains(self):
        schema = RelationSchema("r", ("a",))
        relation = Relation(schema, [(1,), (2,)])
        assert Row(schema, (1,)) in relation
        assert len(relation) == 2

    def test_set_semantics(self):
        schema = RelationSchema("r", ("a",))
        relation = Relation(schema, [(1,), (1,), (1,)])
        assert len(relation) == 1

    def test_sorted_rows_deterministic(self):
        schema = RelationSchema("r", ("a",))
        relation = Relation(schema, [(3,), (1,), (2,)])
        assert [r.values for r in relation.sorted_rows()] == [(1,), (2,), (3,)]

    def test_mixed_type_sorting_does_not_raise(self):
        schema = RelationSchema("r", ("a",))
        relation = Relation(schema, [(1,), ("x",), (2.5,)])
        assert len(relation.sorted_rows()) == 3

    def test_schema_mismatch_rejected(self):
        s1 = RelationSchema("r", ("a",))
        s2 = RelationSchema("r", ("b",))
        relation = Relation(s1)
        with pytest.raises(SchemaError):
            relation.add(Row(s2, (1,)))

    def test_discard(self):
        schema = RelationSchema("r", ("a",))
        relation = Relation(schema, [(1,)])
        relation.discard(Row(schema, (1,)))
        assert len(relation) == 0

    def test_equality(self):
        schema = RelationSchema("r", ("a",))
        assert Relation(schema, [(1,), (2,)]) == Relation(schema, [(2,), (1,)])


class TestDatabase:
    def test_relation_lookup(self):
        schema = RelationSchema("r", ("a",))
        db = Database([Relation(schema, [(1,)])])
        assert db.has_relation("r")
        assert len(db.relation("r")) == 1

    def test_missing_relation_raises(self):
        db = Database()
        with pytest.raises(SchemaError, match="no relation"):
            db.relation("nope")

    def test_duplicate_relation_rejected(self):
        schema = RelationSchema("r", ("a",))
        db = Database([Relation(schema)])
        with pytest.raises(SchemaError, match="duplicate"):
            db.add_relation(Relation(schema))

    def test_insert(self):
        schema = RelationSchema("r", ("a", "b"))
        db = Database([Relation(schema)])
        row = db.insert("r", 1, 2)
        assert row in db.relation("r")

    def test_active_domain(self):
        schema = RelationSchema("r", ("a", "b"))
        db = Database([Relation(schema, [(1, "x"), (2, "y")])])
        assert db.active_domain() == frozenset({1, 2, "x", "y"})

    def test_active_domain_with_extra(self):
        schema = RelationSchema("r", ("a",))
        db = Database([Relation(schema, [(1,)])])
        assert db.active_domain(extra=[99]) == frozenset({1, 99})

    def test_active_domain_cache_invalidated_on_insert(self):
        schema = RelationSchema("r", ("a",))
        db = Database([Relation(schema, [(1,)])])
        assert 5 not in db.active_domain()
        db.insert("r", 5)
        assert 5 in db.active_domain()

    def test_total_rows(self):
        s1 = RelationSchema("r", ("a",))
        s2 = RelationSchema("s", ("a",))
        db = Database([Relation(s1, [(1,), (2,)]), Relation(s2, [(3,)])])
        assert db.total_rows() == 3

    def test_relation_names_sorted(self):
        s1 = RelationSchema("zz", ("a",))
        s2 = RelationSchema("aa", ("a",))
        db = Database([Relation(s1), Relation(s2)])
        assert db.relation_names == ("aa", "zz")
