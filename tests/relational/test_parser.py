"""Tests for the textual query language parser."""

import pytest

from repro.relational.ast import (
    And,
    Comparison,
    Exists,
    Forall,
    Not,
    Or,
    QueryLanguage,
    RelationAtom,
)
from repro.relational.evaluate import evaluate
from repro.relational.parser import ParseError, parse_formula, parse_query
from repro.relational.schema import Database, Relation, RelationSchema
from repro.relational.terms import ComparisonOp, Const, Var


@pytest.fixture
def db():
    edge = RelationSchema("edge", ("src", "dst"))
    node = RelationSchema("node", ("id", "label"))
    return Database(
        [
            Relation(edge, [(1, 2), (2, 3), (1, 3)]),
            Relation(node, [(1, "a"), (2, "b"), (3, "a")]),
        ]
    )


class TestFormulas:
    def test_atom(self):
        f = parse_formula("edge(X, Y)")
        assert f == RelationAtom("edge", (Var("X"), Var("Y")))

    def test_atom_with_constants(self):
        f = parse_formula("edge(X, 3)")
        assert f == RelationAtom("edge", (Var("X"), Const(3)))

    def test_lowercase_identifier_is_string_constant(self):
        f = parse_formula("node(X, blue)")
        assert f == RelationAtom("node", (Var("X"), Const("blue")))

    def test_quoted_string_constant(self):
        f = parse_formula('node(X, "hello world")')
        assert f == RelationAtom("node", (Var("X"), Const("hello world")))

    def test_float_constant(self):
        f = parse_formula("score(X, 2.5)")
        assert f == RelationAtom("score", (Var("X"), Const(2.5)))

    def test_negative_number(self):
        f = parse_formula("X > -3")
        assert f == Comparison(ComparisonOp.GT, Var("X"), Const(-3))

    def test_comparison_operators(self):
        for text, op in [
            ("X = Y", ComparisonOp.EQ),
            ("X != Y", ComparisonOp.NE),
            ("X <> Y", ComparisonOp.NE),
            ("X < Y", ComparisonOp.LT),
            ("X <= Y", ComparisonOp.LE),
            ("X > Y", ComparisonOp.GT),
            ("X >= Y", ComparisonOp.GE),
        ]:
            assert parse_formula(text) == Comparison(op, Var("X"), Var("Y"))

    def test_conjunction_comma_and_keyword(self):
        f1 = parse_formula("edge(X, Y), edge(Y, Z)")
        f2 = parse_formula("edge(X, Y) and edge(Y, Z)")
        assert isinstance(f1, And) and f1 == f2

    def test_disjunction(self):
        f = parse_formula("edge(X, Y) or edge(Y, X)")
        assert isinstance(f, Or) and len(f.children) == 2

    def test_precedence_and_binds_tighter_than_or(self):
        f = parse_formula("a(X) or b(X), c(X)")
        assert isinstance(f, Or)
        assert isinstance(f.children[1], And)

    def test_parentheses(self):
        f = parse_formula("(a(X) or b(X)), c(X)")
        assert isinstance(f, And)
        assert isinstance(f.children[0], Or)

    def test_negation(self):
        f = parse_formula("not edge(X, Y)")
        assert f == Not(RelationAtom("edge", (Var("X"), Var("Y"))))

    def test_exists(self):
        f = parse_formula("exists Y : edge(X, Y)")
        assert isinstance(f, Exists) and f.variables == ("Y",)

    def test_exists_multiple_vars(self):
        f = parse_formula("exists Y, Z : (edge(X, Y), edge(Y, Z))")
        assert isinstance(f, Exists) and f.variables == ("Y", "Z")

    def test_forall_with_negation(self):
        f = parse_formula("forall W : not edge(X, W)")
        assert isinstance(f, Forall)
        assert isinstance(f.child, Not)

    def test_quantifier_scopes_one_unary(self):
        # "exists Y : a(Y), b(X)" — the conjunction is NOT under ∃.
        f = parse_formula("exists Y : a(Y), b(X)")
        assert isinstance(f, And)
        assert isinstance(f.children[0], Exists)

    def test_comments(self):
        f = parse_formula("edge(X, Y) -- the path start\n, edge(Y, Z)")
        assert isinstance(f, And)


class TestQueries:
    def test_basic_query(self, db):
        q = parse_query("Q(X) :- exists Y : edge(X, Y)")
        assert q.language is QueryLanguage.CQ
        assert {r.values for r in evaluate(q, db).rows} == {(1,), (2,)}

    def test_query_with_comparison(self, db):
        q = parse_query("Q(X, Y) :- edge(X, Y), X < Y")
        assert len(evaluate(q, db)) == 3

    def test_fo_query(self, db):
        q = parse_query("Sink(X) :- exists L : (node(X, L), forall W : not edge(X, W))")
        assert q.language is QueryLanguage.FO
        assert {r.values for r in evaluate(q, db).rows} == {(3,)}

    def test_ucq_query(self, db):
        q = parse_query("Q(X, Y) :- edge(X, Y) or edge(Y, X)")
        assert q.language is QueryLanguage.UCQ
        assert len(evaluate(q, db)) == 6

    def test_query_name_from_head(self):
        q = parse_query("Reachable(X, Y) :- edge(X, Y)")
        assert q.name == "Reachable"

    def test_name_override(self):
        q = parse_query("Q(X, Y) :- edge(X, Y)", name="custom")
        assert q.name == "custom"

    def test_negative_number_after_arrow(self, db):
        q = parse_query("Q(X, Y) :- edge(X, Y), X > -5")
        assert len(evaluate(q, db)) == 3

    def test_underscore_prefixed_variable(self):
        q = parse_query("Q(_x) :- edge(_x, _x)")
        assert q.head == ("_x",)


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_formula("edge(X, Y) & edge(Y, Z)")

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_query("Q(X) edge(X, Y)")

    def test_constant_in_head(self):
        with pytest.raises(ParseError, match="variables"):
            parse_query("Q(x) :- edge(x, Y)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_formula("edge(X, Y) edge(Y, Z)")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_formula("(edge(X, Y)")

    def test_keyword_as_term(self):
        with pytest.raises(ParseError):
            parse_formula("edge(X, not)")

    def test_missing_comparison_operand(self):
        with pytest.raises(ParseError):
            parse_formula("X >")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_formula("")


class TestRoundTrip:
    """Parsed queries must evaluate identically to hand-built ASTs."""

    def test_against_builder(self, db):
        from repro.relational import builder as qb

        parsed = parse_query("Q(X, Z) :- exists Y : (edge(X, Y), edge(Y, Z))")
        built = qb.query(
            ["X", "Z"],
            qb.exists(
                ["Y"],
                qb.conj(qb.atom("edge", "?X", "?Y"), qb.atom("edge", "?Y", "?Z")),
            ),
        )
        assert {r.values for r in evaluate(parsed, db).rows} == {
            r.values for r in evaluate(built, db).rows
        }
