"""Tests for CSV/JSON relation and database I/O."""

import io
import json

import pytest

from repro.relational.io import (
    database_from_dict,
    database_to_dict,
    dump_database_json,
    dump_relation_csv,
    load_database_csv_directory,
    load_database_json,
    load_relation_csv,
    relation_from_dict,
    relation_to_dict,
)
from repro.relational.schema import Database, Relation, RelationSchema, SchemaError


@pytest.fixture
def relation():
    schema = RelationSchema("items", ("id", "name", "price"))
    return Relation(schema, [(1, "pen", 2.5), (2, "book", 10.0)])


class TestCSV:
    def test_load_from_string_buffer(self):
        text = "id,name,price\n1,pen,2.5\n2,book,10\n"
        relation = load_relation_csv(io.StringIO(text), name="items")
        assert len(relation) == 2
        assert relation.schema.attributes == ("id", "name", "price")

    def test_value_parsing(self):
        text = "a,b,c\n1,2.5,hello\n"
        relation = load_relation_csv(io.StringIO(text), name="r")
        row = next(iter(relation.rows))
        assert row["a"] == 1 and row["b"] == 2.5 and row["c"] == "hello"

    def test_no_parsing_option(self):
        text = "a\n42\n"
        relation = load_relation_csv(io.StringIO(text), name="r", parse_values=False)
        assert next(iter(relation.rows))["a"] == "42"

    def test_empty_input_rejected(self):
        with pytest.raises(SchemaError, match="empty"):
            load_relation_csv(io.StringIO(""), name="r")

    def test_ragged_row_rejected(self):
        text = "a,b\n1,2\n3\n"
        with pytest.raises(SchemaError, match="line 3"):
            load_relation_csv(io.StringIO(text), name="r")

    def test_blank_lines_skipped(self):
        text = "a\n1\n\n2\n"
        relation = load_relation_csv(io.StringIO(text), name="r")
        assert len(relation) == 2

    def test_round_trip(self, relation):
        buffer = io.StringIO()
        dump_relation_csv(relation, buffer)
        loaded = load_relation_csv(io.StringIO(buffer.getvalue()), name="items")
        assert {r.values for r in loaded.rows} == {r.values for r in relation.rows}

    def test_file_round_trip(self, relation, tmp_path):
        path = tmp_path / "items.csv"
        dump_relation_csv(relation, path)
        loaded = load_relation_csv(path)
        assert loaded.schema.name == "items"
        assert len(loaded) == 2

    def test_directory_load(self, relation, tmp_path):
        dump_relation_csv(relation, tmp_path / "items.csv")
        other = Relation(RelationSchema("tags", ("id", "tag")), [(1, "x")])
        dump_relation_csv(other, tmp_path / "tags.csv")
        db = load_database_csv_directory(tmp_path)
        assert db.relation_names == ("items", "tags")

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(SchemaError, match="no CSV"):
            load_database_csv_directory(tmp_path)


class TestJSON:
    def test_relation_round_trip(self, relation):
        data = relation_to_dict(relation)
        loaded = relation_from_dict(data)
        assert loaded == relation

    def test_database_round_trip(self, relation):
        db = Database([relation])
        data = database_to_dict(db)
        loaded = database_from_dict(data)
        assert loaded.relation_names == db.relation_names
        assert loaded.relation("items") == relation

    def test_file_round_trip(self, relation, tmp_path):
        db = Database([relation])
        path = tmp_path / "db.json"
        dump_database_json(db, path)
        loaded = load_database_json(path)
        assert loaded.relation("items") == relation

    def test_single_relation_json_accepted(self, relation, tmp_path):
        path = tmp_path / "rel.json"
        path.write_text(json.dumps(relation_to_dict(relation)))
        db = load_database_json(path)
        assert db.has_relation("items")

    def test_missing_keys_rejected(self):
        with pytest.raises(SchemaError):
            relation_from_dict({"name": "r"})
        with pytest.raises(SchemaError):
            database_from_dict({})
