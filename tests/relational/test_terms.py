"""Unit tests for terms and comparison operators."""

import pytest

from repro.relational.terms import ComparisonOp, Const, Var, as_term, parse_op


class TestTerms:
    def test_var_identity(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")
        assert hash(Var("x")) == hash(Var("x"))

    def test_const_identity(self):
        assert Const(1) == Const(1)
        assert Const(1) != Const("1")

    def test_var_and_const_never_equal(self):
        assert Var("x") != Const("x")

    def test_empty_var_name_rejected(self):
        with pytest.raises(ValueError):
            Var("")

    def test_as_term_question_mark_convention(self):
        assert as_term("?x") == Var("x")
        assert as_term("x") == Const("x")
        assert as_term(5) == Const(5)

    def test_as_term_passthrough(self):
        v = Var("x")
        assert as_term(v) is v
        c = Const(3)
        assert as_term(c) is c


class TestComparisonOp:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            (ComparisonOp.EQ, 1, 1, True),
            (ComparisonOp.EQ, 1, 2, False),
            (ComparisonOp.NE, 1, 2, True),
            (ComparisonOp.LT, 1, 2, True),
            (ComparisonOp.LE, 2, 2, True),
            (ComparisonOp.GT, 3, 2, True),
            (ComparisonOp.GE, 1, 2, False),
        ],
    )
    def test_evaluate(self, op, left, right, expected):
        assert op.evaluate(left, right) is expected

    def test_incomparable_types_are_false_not_error(self):
        assert ComparisonOp.LT.evaluate(1, "x") is False
        assert ComparisonOp.GE.evaluate("a", 3) is False

    def test_eq_between_types(self):
        assert ComparisonOp.EQ.evaluate(1, "1") is False
        assert ComparisonOp.NE.evaluate(1, "1") is True

    @pytest.mark.parametrize("op", list(ComparisonOp))
    def test_negation_is_involution(self, op):
        assert op.negate().negate() is op

    @pytest.mark.parametrize("op", list(ComparisonOp))
    def test_negation_semantics(self, op):
        for left, right in [(1, 2), (2, 1), (2, 2)]:
            assert op.evaluate(left, right) != op.negate().evaluate(left, right)

    @pytest.mark.parametrize("op", list(ComparisonOp))
    def test_flip_semantics(self, op):
        for left, right in [(1, 2), (2, 1), (2, 2)]:
            assert op.evaluate(left, right) == op.flip().evaluate(right, left)

    def test_parse_op(self):
        assert parse_op("=") is ComparisonOp.EQ
        assert parse_op("==") is ComparisonOp.EQ
        assert parse_op("<>") is ComparisonOp.NE
        assert parse_op("<=") is ComparisonOp.LE

    def test_parse_op_unknown(self):
        with pytest.raises(ValueError):
            parse_op("~~")
