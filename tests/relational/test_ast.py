"""Unit tests for the formula AST and query-language classification."""

import pytest

from repro.relational.ast import (
    And,
    Comparison,
    Exists,
    Forall,
    Not,
    Or,
    QueryLanguage,
    RelationAtom,
    classify,
)
from repro.relational.terms import ComparisonOp


def atom(name="R", *terms):
    return RelationAtom(name, terms or ("?x",))


class TestNodes:
    def test_atom_free_variables(self):
        a = RelationAtom("R", ("?x", 5, "?y"))
        assert a.free_variables() == {"x", "y"}

    def test_atom_constants(self):
        a = RelationAtom("R", ("?x", 5, "hello"))
        assert a.constants() == {5, "hello"}

    def test_comparison_free_variables(self):
        c = Comparison(ComparisonOp.LE, "?p", 30)
        assert c.free_variables() == {"p"}
        assert c.constants() == {30}

    def test_and_flattens(self):
        f = And((And((atom("A"), atom("B"))), atom("C")))
        assert len(f.children) == 3

    def test_or_flattens(self):
        f = Or((Or((atom("A"), atom("B"))), atom("C")))
        assert len(f.children) == 3

    def test_empty_connectives_rejected(self):
        with pytest.raises(ValueError):
            And(())
        with pytest.raises(ValueError):
            Or(())

    def test_operator_sugar(self):
        f = atom("A") & atom("B") | ~atom("C")
        assert isinstance(f, Or)

    def test_exists_binds(self):
        f = Exists(["x"], RelationAtom("R", ("?x", "?y")))
        assert f.free_variables() == {"y"}

    def test_forall_binds_multiple(self):
        f = Forall(["x", "y"], RelationAtom("R", ("?x", "?y")))
        assert f.free_variables() == set()

    def test_quantifier_duplicate_vars_rejected(self):
        with pytest.raises(ValueError):
            Exists(["x", "x"], atom())

    def test_quantifier_shadowing(self):
        inner = Exists(["x"], RelationAtom("R", ("?x",)))
        outer = Exists(["x"], And((RelationAtom("S", ("?x",)), inner)))
        assert outer.free_variables() == set()

    def test_atoms_iteration(self):
        f = And((atom("A"), Or((atom("B"), Not(atom("C"))))))
        assert sorted(a.relation for a in f.atoms()) == ["A", "B", "C"]

    def test_node_equality_and_hash(self):
        f1 = And((atom("A"), atom("B")))
        f2 = And((atom("A"), atom("B")))
        assert f1 == f2 and hash(f1) == hash(f2)

    def test_single_string_variable_accepted(self):
        f = Exists("x", RelationAtom("R", ("?x",)))
        assert f.variables == ("x",)


class TestClassification:
    def test_single_atom_is_cq(self):
        assert classify(atom()) is QueryLanguage.CQ

    def test_conjunction_with_comparison_is_cq(self):
        f = And((atom("A"), Comparison(ComparisonOp.LT, "?x", 5)))
        assert classify(f) is QueryLanguage.CQ

    def test_exists_cq(self):
        f = Exists(["y"], And((RelationAtom("R", ("?x", "?y")),)))
        assert classify(f) is QueryLanguage.CQ

    def test_union_of_cqs_is_ucq(self):
        f = Or((atom("A"), atom("B")))
        assert classify(f) is QueryLanguage.UCQ

    def test_disjunction_under_conjunction_is_efo(self):
        f = And((atom("A"), Or((atom("B"), atom("C")))))
        assert classify(f) is QueryLanguage.EFO_PLUS

    def test_exists_over_union_is_efo(self):
        # ∃ above an Or is not a plain union of CQs syntactically.
        f = Exists(["x"], Or((atom("A"), atom("B"))))
        assert classify(f) is QueryLanguage.EFO_PLUS

    def test_negation_is_fo(self):
        assert classify(Not(atom())) is QueryLanguage.FO

    def test_forall_is_fo(self):
        assert classify(Forall(["x"], RelationAtom("R", ("?x",)))) is QueryLanguage.FO

    def test_double_negation_still_fo(self):
        # Classification is syntactic, as in the paper.
        assert classify(Not(Not(atom()))) is QueryLanguage.FO

    def test_subsumption_order(self):
        assert QueryLanguage.FO.subsumes(QueryLanguage.CQ)
        assert QueryLanguage.UCQ.subsumes(QueryLanguage.CQ)
        assert not QueryLanguage.CQ.subsumes(QueryLanguage.UCQ)
        assert QueryLanguage.CQ.subsumes(QueryLanguage.IDENTITY)
        assert QueryLanguage.EFO_PLUS.subsumes(QueryLanguage.UCQ)
