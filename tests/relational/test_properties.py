"""Property-based tests (hypothesis) for the relational substrate."""

from hypothesis import given, settings, strategies as st

from repro.relational import algebra, builder as qb
from repro.relational.evaluate import evaluate, membership
from repro.relational.queries import identity_query
from repro.relational.schema import Database, Relation, RelationSchema

PAIR = st.tuples(st.integers(0, 5), st.integers(0, 5))
PAIRS = st.lists(PAIR, max_size=12)


def edge_relation(pairs, name="edge"):
    return Relation(RelationSchema(name, ("src", "dst")), pairs)


@given(PAIRS)
def test_identity_query_returns_the_relation(pairs):
    relation = edge_relation(pairs)
    db = Database([relation])
    result = evaluate(identity_query(relation.schema), db)
    assert {r.values for r in result.rows} == set(pairs)


@given(PAIRS, PAIRS)
def test_union_commutes(p1, p2):
    r1 = edge_relation(p1, "r1")
    r2 = edge_relation(p2, "r2")
    assert {r.values for r in algebra.union(r1, r2).rows} == {
        r.values for r in algebra.union(r2, r1).rows
    }


@given(PAIRS, PAIRS)
def test_difference_union_partition(p1, p2):
    r1 = edge_relation(p1, "r1")
    r2 = edge_relation(p2, "r2")
    diff = algebra.difference(r1, r2)
    inter = algebra.intersection(r1, r2)
    rebuilt = {r.values for r in algebra.union(diff, inter).rows}
    assert rebuilt == set(p1)


@given(PAIRS)
@settings(max_examples=30)
def test_join_with_self_contains_paths(pairs):
    relation = edge_relation(pairs)
    db = Database([relation])
    q = qb.query(
        ["x", "z"],
        qb.exists(
            ["y"],
            qb.conj(qb.atom("edge", "?x", "?y"), qb.atom("edge", "?y", "?z")),
        ),
    )
    result = {r.values for r in evaluate(q, db).rows}
    expected = {
        (a, d) for (a, b) in pairs for (c, d) in pairs if b == c
    }
    assert result == expected


@given(PAIRS)
@settings(max_examples=30)
def test_membership_consistent_with_evaluation(pairs):
    relation = edge_relation(pairs)
    db = Database([relation])
    q = qb.query(["x"], qb.exists(["y"], qb.atom("edge", "?x", "?y")))
    answers = {r.values for r in evaluate(q, db).rows}
    for value in db.active_domain():
        assert membership(q, db, (value,)) == ((value,) in answers)


@given(PAIRS)
@settings(max_examples=30)
def test_negation_complements_within_domain(pairs):
    relation = edge_relation(pairs)
    db = Database([relation])
    has_out = qb.query(["x"], qb.exists(["y"], qb.atom("edge", "?x", "?y")))
    no_out = qb.query(
        ["x"],
        qb.conj(
            qb.exists(
                ["y", "w"], qb.disj(qb.atom("edge", "?x", "?y"), qb.atom("edge", "?w", "?x"))
            ),
            qb.neg(qb.exists(["y"], qb.atom("edge", "?x", "?y"))),
        ),
    )
    touched = {a for (a, b) in pairs} | {b for (a, b) in pairs}
    out = {r.values[0] for r in evaluate(has_out, db).rows}
    none = {r.values[0] for r in evaluate(no_out, db).rows}
    assert out | none == touched
    assert out & none == set()
