"""Deeper evaluation tests: the quantifier accelerations, mixed
generator/residual bodies, and FO-vs-algebra cross-checks."""

import pytest

from repro.relational import algebra, builder as qb
from repro.relational.ast import (
    And,
    Comparison,
    Exists,
    Forall,
    Not,
    Or,
    RelationAtom,
)
from repro.relational.evaluate import evaluate, holds, membership
from repro.relational.queries import Query
from repro.relational.schema import Database, Relation, RelationSchema
from repro.relational.terms import ComparisonOp, Var


@pytest.fixture
def store_db():
    """A two-relation store: products and purchases."""
    products = RelationSchema("product", ("pid", "category", "price"))
    purchases = RelationSchema("bought", ("customer", "pid"))
    return Database(
        [
            Relation(
                products,
                [
                    (1, "book", 12),
                    (2, "book", 30),
                    (3, "game", 45),
                    (4, "game", 20),
                    (5, "music", 9),
                ],
            ),
            Relation(
                purchases,
                [("ann", 1), ("ann", 3), ("bob", 2), ("bob", 4), ("cara", 5)],
            ),
        ]
    )


class TestGeneratorResidualSplit:
    def test_exists_with_negative_residual(self, store_db):
        """∃ with a positive generator atom and a negated conjunct:
        products nobody bought."""
        p, c, pr, cu = Var("p"), Var("c"), Var("pr"), Var("cu")
        body = Exists(
            ["c", "pr"],
            And(
                (
                    RelationAtom("product", (p, c, pr)),
                    Not(Exists(["cu"], RelationAtom("bought", (cu, p)))),
                )
            ),
        )
        q = Query(["p"], body)
        assert {r.values for r in evaluate(q, store_db).rows} == set()

    def test_exists_with_forall_residual(self, store_db):
        """Customers who only bought books."""
        cu, p = Var("cu"), Var("p")
        only_books = Forall(
            ["p"],
            Or(
                (
                    Not(RelationAtom("bought", (cu, p))),
                    Exists(
                        ["pr"],
                        RelationAtom("product", (p, "book", Var("pr"))),
                    ),
                )
            ),
        )
        body = And(
            (
                Exists(["p0"], RelationAtom("bought", (cu, Var("p0")))),
                only_books,
            )
        )
        q = Query(["cu"], body)
        # ann bought book+game; bob book+game; cara music — nobody.
        assert len(evaluate(q, store_db)) == 0
        store_db.insert("bought", "dora", 1)
        q2 = Query(["cu"], body)
        assert {r.values for r in evaluate(q2, store_db).rows} == {("dora",)}

    def test_division_pattern(self, store_db):
        """Relational division via ∀: customers who bought every game."""
        cu = Var("cu")
        body = And(
            (
                Exists(["px"], RelationAtom("bought", (cu, Var("px")))),
                Forall(
                    ["g", "gp"],
                    Or(
                        (
                            Not(
                                RelationAtom(
                                    "product", (Var("g"), "game", Var("gp"))
                                )
                            ),
                            RelationAtom("bought", (cu, Var("g"))),
                        )
                    ),
                ),
            )
        )
        q = Query(["cu"], body)
        # games are pids 3 and 4; ann has 3, bob has 4 — neither has both.
        assert len(evaluate(q, store_db)) == 0
        store_db.insert("bought", "ann", 4)
        q2 = Query(["cu"], body)
        assert {r.values for r in evaluate(q2, store_db).rows} == {("ann",)}

    def test_division_matches_algebra(self, store_db):
        """The FO division result equals the algebraic computation."""
        products = store_db.relation("product")
        bought = store_db.relation("bought")
        games = algebra.project(
            algebra.select(products, lambda r: r["category"] == "game"), ("pid",)
        )
        customers = algebra.project(bought, ("customer",))
        expected = set()
        for customer_row in customers.rows:
            cu = customer_row["customer"]
            owned = {
                r["pid"] for r in bought.rows if r["customer"] == cu
            }
            if {g["pid"] for g in games.rows} <= owned:
                expected.add((cu,))

        body = And(
            (
                Exists(["px"], RelationAtom("bought", (Var("cu"), Var("px")))),
                Forall(
                    ["g", "gp"],
                    Or(
                        (
                            Not(
                                RelationAtom(
                                    "product", (Var("g"), "game", Var("gp"))
                                )
                            ),
                            RelationAtom("bought", (Var("cu"), Var("g"))),
                        )
                    ),
                ),
            )
        )
        q = Query(["cu"], body)
        assert {r.values for r in evaluate(q, store_db).rows} == expected


class TestComparisonOnlySubformulas:
    def test_pure_comparison_exists(self, store_db):
        """∃x over the active domain with only comparisons."""
        domain = store_db.active_domain()
        f = Exists(["x"], Comparison(ComparisonOp.GT, Var("x"), 40))
        assert holds(f, {}, store_db, domain)  # 45 ∈ adom
        f2 = Exists(["x"], Comparison(ComparisonOp.GT, Var("x"), 100))
        assert not holds(f2, {}, store_db, domain)

    def test_forall_comparison(self, store_db):
        domain = frozenset({1, 2, 3})
        f = Forall(["x"], Comparison(ComparisonOp.LE, Var("x"), 3))
        assert holds(f, {}, store_db, domain)
        f2 = Forall(["x"], Comparison(ComparisonOp.LE, Var("x"), 2))
        assert not holds(f2, {}, store_db, domain)


class TestUnionPadding:
    def test_disjuncts_with_different_variables(self, store_db):
        """Or-children binding different variable sets expand over the
        active domain for the missing ones (active-domain semantics)."""
        body = Or(
            (
                RelationAtom("bought", (Var("x"), Var("y"))),
                And(
                    (
                        Exists(["c", "p"], RelationAtom("product", (Var("y"), Var("c"), Var("p")))),
                        Comparison(ComparisonOp.EQ, Var("x"), "ann"),
                    )
                ),
            )
        )
        q = Query(["x", "y"], body)
        result = {r.values for r in evaluate(q, store_db).rows}
        assert ("ann", 1) in result  # from the first disjunct
        assert ("ann", 2) in result  # from the second (product 2)
        assert ("bob", 2) in result  # bought
        assert ("bob", 1) not in result


class TestNegationConsistency:
    @pytest.mark.parametrize("value", ["ann", "bob", "cara"])
    def test_not_membership_agrees(self, store_db, value):
        q = qb.query(
            ["c"],
            qb.conj(
                qb.exists(["p"], qb.atom("bought", "?c", "?p")),
                qb.neg(qb.atom("bought", "?c", 1)),
            ),
        )
        answers = {r.values for r in evaluate(q, store_db).rows}
        assert membership(q, store_db, (value,)) == ((value,) in answers)

    def test_double_negation_identity(self, store_db):
        base = qb.query(["x", "y"], qb.atom("bought", "?x", "?y"))
        doubled = Query(
            ["x", "y"], Not(Not(RelationAtom("bought", (Var("x"), Var("y")))))
        )
        assert {r.values for r in evaluate(base, store_db).rows} == {
            r.values for r in evaluate(doubled, store_db).rows
        }

    def test_negate_on_quantified_formula_semantics(self, store_db):
        domain = store_db.active_domain()
        f = Forall(["p"], Not(RelationAtom("bought", (Var("c"), Var("p")))))
        for customer in ("ann", "zoe"):
            expected = not holds(
                Exists(["p"], RelationAtom("bought", (Var("c"), Var("p")))),
                {"c": customer},
                store_db,
                domain,
            )
            assert holds(f, {"c": customer}, store_db, domain) == expected
