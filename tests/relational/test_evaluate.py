"""Tests for query evaluation: CQ joins, unions, FO with negation and
quantifiers, membership, and agreement between the two evaluation paths."""

import pytest

from repro.relational import builder as qb
from repro.relational.ast import (
    And,
    Comparison,
    Exists,
    Forall,
    Not,
    Or,
    RelationAtom,
)
from repro.relational.evaluate import (
    EvaluationError,
    active_domain,
    evaluate,
    holds,
    membership,
    negate,
    result_size,
    substitute,
)
from repro.relational.queries import Query, QueryError, identity_query
from repro.relational.schema import Database, Relation, RelationSchema
from repro.relational.terms import ComparisonOp, Var


@pytest.fixture
def graph_db() -> Database:
    node = RelationSchema("node", ("id", "label"))
    edge = RelationSchema("edge", ("src", "dst"))
    nodes = Relation(node, [(1, "a"), (2, "a"), (3, "b"), (4, "b")])
    edges = Relation(edge, [(1, 2), (2, 3), (3, 4), (1, 3)])
    return Database([nodes, edges])


def values_of(relation) -> set:
    return {row.values for row in relation.rows}


class TestCQEvaluation:
    def test_identity_query(self, graph_db):
        schema = RelationSchema("edge", ("src", "dst"))
        q = identity_query(schema)
        assert values_of(evaluate(q, graph_db)) == {(1, 2), (2, 3), (3, 4), (1, 3)}

    def test_single_atom_projection(self, graph_db):
        q = qb.query(["x"], qb.exists(["y"], qb.atom("edge", "?x", "?y")))
        assert values_of(evaluate(q, graph_db)) == {(1,), (2,), (3,)}

    def test_join(self, graph_db):
        body = qb.exists(
            ["y"],
            qb.conj(qb.atom("edge", "?x", "?y"), qb.atom("edge", "?y", "?z")),
        )
        q = qb.query(["x", "z"], body)
        assert values_of(evaluate(q, graph_db)) == {(1, 3), (2, 4), (1, 4)}

    def test_join_with_constant(self, graph_db):
        q = qb.query(["x"], qb.atom("edge", "?x", 3))
        assert values_of(evaluate(q, graph_db)) == {(2,), (1,)}

    def test_repeated_variable_in_atom(self):
        schema = RelationSchema("r", ("a", "b"))
        db = Database([Relation(schema, [(1, 1), (1, 2), (3, 3)])])
        q = qb.query(["x"], qb.atom("r", "?x", "?x"))
        assert values_of(evaluate(q, db)) == {(1,), (3,)}

    def test_comparison_filter(self, graph_db):
        body = qb.conj(qb.atom("edge", "?x", "?y"), qb.cmp("?x", "<", "?y"))
        q = qb.query(["x", "y"], body)
        assert values_of(evaluate(q, graph_db)) == {(1, 2), (2, 3), (3, 4), (1, 3)}

    def test_comparison_against_constant(self, graph_db):
        body = qb.conj(qb.atom("edge", "?x", "?y"), qb.cmp("?y", ">=", 3))
        q = qb.query(["x", "y"], body)
        assert values_of(evaluate(q, graph_db)) == {(2, 3), (3, 4), (1, 3)}

    def test_selection_on_label(self, graph_db):
        body = qb.conj(qb.atom("node", "?x", "?l"), qb.eq("?l", "a"))
        q = qb.query(["x"], qb.exists(["l"], body))
        assert values_of(evaluate(q, graph_db)) == {(1,), (2,)}

    def test_cartesian_product(self):
        r = RelationSchema("r", ("a",))
        s = RelationSchema("s", ("b",))
        db = Database([Relation(r, [(1,), (2,)]), Relation(s, [("x",)])])
        q = qb.query(["a", "b"], qb.conj(qb.atom("r", "?a"), qb.atom("s", "?b")))
        assert values_of(evaluate(q, db)) == {(1, "x"), (2, "x")}

    def test_empty_result(self, graph_db):
        q = qb.query(["x"], qb.atom("edge", "?x", 99))
        assert len(evaluate(q, graph_db)) == 0


class TestUCQAndEFO:
    def test_union(self, graph_db):
        body = qb.disj(qb.atom("edge", "?x", "?y"), qb.atom("edge", "?y", "?x"))
        q = qb.query(["x", "y"], body)
        result = values_of(evaluate(q, graph_db))
        assert (2, 1) in result and (1, 2) in result

    def test_union_with_different_shapes(self, graph_db):
        left = qb.exists(["y"], qb.atom("edge", "?x", "?y"))
        right = qb.exists(["y"], qb.atom("edge", "?y", "?x"))
        q = qb.query(["x"], qb.disj(left, right))
        assert values_of(evaluate(q, graph_db)) == {(1,), (2,), (3,), (4,)}

    def test_disjunction_inside_conjunction(self, graph_db):
        body = qb.conj(
            qb.atom("node", "?x", "?l"),
            qb.disj(qb.eq("?l", "a"), qb.eq("?l", "b")),
        )
        q = qb.query(["x"], qb.exists(["l"], body))
        assert values_of(evaluate(q, graph_db)) == {(1,), (2,), (3,), (4,)}


class TestFOEvaluation:
    def test_negation_of_atom(self, graph_db):
        # Nodes with no outgoing edge to node 2.
        x = Var("x")
        body = Exists(
            ["l"],
            And(
                (
                    RelationAtom("node", (x, Var("l"))),
                    Not(RelationAtom("edge", (x, 2))),
                )
            ),
        )
        q = Query(["x"], body)
        assert values_of(evaluate(q, graph_db)) == {(2,), (3,), (4,)}

    def test_forall_sinks(self, graph_db):
        # Sinks: nodes with no outgoing edges at all.
        x, w = Var("x"), Var("w")
        body = Exists(
            ["l"],
            And(
                (
                    RelationAtom("node", (x, Var("l"))),
                    Forall(["w"], Not(RelationAtom("edge", (x, w)))),
                )
            ),
        )
        q = Query(["x"], body)
        assert values_of(evaluate(q, graph_db)) == {(4,)}

    def test_forall_with_implication_shape(self, graph_db):
        # Nodes all of whose out-neighbours have label "b":
        # ∀w (¬edge(x,w) ∨ ∃l' (node(w,l') ∧ l'=b))
        x, w = Var("x"), Var("w")
        neighbour_is_b = Exists(
            ["l2"],
            And(
                (
                    RelationAtom("node", (w, Var("l2"))),
                    Comparison(ComparisonOp.EQ, Var("l2"), "b"),
                )
            ),
        )
        body = Exists(
            ["l"],
            And(
                (
                    RelationAtom("node", (x, Var("l"))),
                    Forall(["w"], Or((Not(RelationAtom("edge", (x, w))), neighbour_is_b))),
                )
            ),
        )
        q = Query(["x"], body)
        # 2 -> 3(b); 3 -> 4(b); 4 -> nothing (vacuous); 1 -> 2(a) fails.
        assert values_of(evaluate(q, graph_db)) == {(2,), (3,), (4,)}

    def test_difference_via_negation(self):
        r = RelationSchema("r", ("a",))
        s = RelationSchema("s", ("a",))
        db = Database([Relation(r, [(1,), (2,), (3,)]), Relation(s, [(2,)])])
        q = qb.query(
            ["a"], qb.conj(qb.atom("r", "?a"), qb.neg(qb.atom("s", "?a")))
        )
        assert values_of(evaluate(q, db)) == {(1,), (3,)}

    def test_holds_requires_bound_variables(self, graph_db):
        f = RelationAtom("edge", (Var("x"), Var("y")))
        with pytest.raises(EvaluationError, match="unbound"):
            holds(f, {"x": 1}, graph_db, graph_db.active_domain())


class TestMembership:
    def test_membership_positive(self, graph_db):
        q = qb.query(["x", "y"], qb.atom("edge", "?x", "?y"))
        assert membership(q, graph_db, (1, 2))
        assert not membership(q, graph_db, (2, 1))

    def test_membership_arity_mismatch(self, graph_db):
        q = qb.query(["x", "y"], qb.atom("edge", "?x", "?y"))
        assert not membership(q, graph_db, (1,))

    def test_membership_out_of_domain(self, graph_db):
        q = qb.query(["x", "y"], qb.atom("edge", "?x", "?y"))
        assert not membership(q, graph_db, (99, 100))

    def test_membership_agrees_with_evaluate(self, graph_db):
        body = qb.exists(
            ["y"],
            qb.conj(qb.atom("edge", "?x", "?y"), qb.atom("edge", "?y", "?z")),
        )
        q = qb.query(["x", "z"], body)
        answers = values_of(evaluate(q, graph_db))
        domain = sorted(active_domain(q, graph_db), key=repr)
        for a in domain:
            for b in domain:
                assert membership(q, graph_db, (a, b)) == ((a, b) in answers)


class TestQueryValidation:
    def test_unbound_head_variable_rejected(self):
        with pytest.raises(QueryError, match="head variables"):
            Query(["z"], RelationAtom("r", ("?x",)))

    def test_free_body_variables_rejected_at_evaluation(self, graph_db):
        q = Query(["x"], RelationAtom("edge", ("?x", "?y")))
        with pytest.raises(QueryError, match="free body variables"):
            evaluate(q, graph_db)

    def test_identity_query_detection(self):
        schema = RelationSchema("r", ("a", "b"))
        assert identity_query(schema).is_identity()
        q = qb.query(["x"], qb.exists(["y"], qb.atom("r", "?x", "?y")))
        assert not q.is_identity()

    def test_result_size(self, graph_db):
        schema = RelationSchema("edge", ("src", "dst"))
        assert result_size(identity_query(schema), graph_db) == 4


class TestNegateAndSubstitute:
    def test_negate_involution_on_comparison(self):
        c = Comparison(ComparisonOp.LT, "?x", 5)
        assert negate(negate(c)) == c

    def test_negate_de_morgan(self):
        f = And((RelationAtom("r", ("?x",)), RelationAtom("s", ("?x",))))
        neg = negate(f)
        assert isinstance(neg, Or)
        assert all(isinstance(c, Not) for c in neg.children)

    def test_negate_quantifiers(self):
        f = Exists(["x"], RelationAtom("r", ("?x",)))
        neg = negate(f)
        assert isinstance(neg, Forall)

    def test_substitute_grounds_free_vars(self):
        f = RelationAtom("r", ("?x", "?y"))
        g = substitute(f, {"x": 1})
        assert g == RelationAtom("r", (1, "?y"))

    def test_substitute_respects_shadowing(self):
        inner = RelationAtom("r", ("?x",))
        f = Exists(["x"], inner)
        g = substitute(f, {"x": 1})
        assert g == f  # the bound x must not be replaced

    def test_negate_semantics_preserved(self, graph_db):
        domain = graph_db.active_domain()
        f = Exists(["y"], RelationAtom("edge", (Var("x"), Var("y"))))
        for x in (1, 2, 3, 4):
            direct = holds(Not(f), {"x": x}, graph_db, domain)
            pushed = holds(negate(f), {"x": x}, graph_db, domain)
            assert direct == pushed
