"""Tests for the web-search diversification workload."""

import pytest

from repro.algorithms.exact import exhaustive_best
from repro.core.objectives import Objective
from repro.workloads import websearch


@pytest.fixture
def db():
    return websearch.generate(num_docs=18, num_intents=3, seed=17)


class TestGeneration:
    def test_deterministic(self):
        a = websearch.generate(seed=1)
        b = websearch.generate(seed=1)
        assert {r.values for r in a.relation("docs").rows} == {
            r.values for r in b.relation("docs").rows
        }

    def test_one_doc_row_per_document(self, db):
        assert len(db.relation("docs")) == 18

    def test_every_doc_covers_its_primary_intent(self, db):
        coverage = websearch.coverage_map(db)
        for row in db.relation("docs").rows:
            assert row["primary_intent"] in coverage[row["doc"]]
            assert coverage[row["doc"]][row["primary_intent"]] == 1.0

    def test_intent_skew(self):
        db = websearch.generate(num_docs=200, num_intents=4, seed=3, intent_skew=0.7)
        weights = websearch.intent_weights_from(db)
        assert max(weights.values()) > 0.5  # head intent dominates


class TestScoring:
    def test_relevance_is_authority(self, db):
        rel = websearch.authority_relevance()
        row = next(iter(db.relation("docs").rows))
        assert rel(row) == row["authority"]

    def test_distance_bounds(self, db):
        dis = websearch.intent_distance(db)
        rows = list(db.relation("docs").rows)
        for left in rows[:6]:
            for right in rows[:6]:
                value = dis(left, right)
                assert 0.0 <= value <= 1.0

    def test_identical_coverage_gives_zero_distance(self, db):
        dis = websearch.intent_distance(db)
        coverage = websearch.coverage_map(db)
        rows = list(db.relation("docs").rows)
        for left in rows:
            for right in rows:
                if left == right:
                    continue
                if set(coverage[left["doc"]]) == set(coverage[right["doc"]]):
                    assert dis(left, right) == 0.0

    def test_coverage_monotone_in_selection(self, db):
        rows = list(db.relation("docs").rows)
        small = websearch.intent_coverage(db, rows[:2])
        large = websearch.intent_coverage(db, rows[:5])
        assert large >= small

    def test_coverage_bounded_by_one(self, db):
        rows = list(db.relation("docs").rows)
        assert websearch.intent_coverage(db, rows) <= 1.0 + 1e-9


class TestDiversificationImproves:
    def test_diversified_coverage_at_least_relevance_only(self, db):
        """On a skewed pool, diversified top-k should cover at least as
        well as authority-only ranking (the paper's motivation)."""
        from repro.core.instance import DiversificationInstance

        query = websearch.documents_query()
        objective = Objective.max_sum(
            websearch.authority_relevance(),
            websearch.intent_distance(db),
            lam=0.8,
        )
        instance = DiversificationInstance(query, db, k=5, objective=objective)
        diversified = exhaustive_best(instance)
        assert diversified is not None
        by_authority = sorted(
            instance.answers(), key=lambda r: r["authority"], reverse=True
        )[:5]
        assert websearch.intent_coverage(db, diversified[1]) >= (
            websearch.intent_coverage(db, by_authority) - 1e-9
        )
