"""Streaming workload: reproducibility, live coverage, database state."""

import pytest

from repro.workloads import websearch
from repro.workloads.streaming import StreamingWebSearch, UpdateEvent


class TestTrace:
    def test_same_seed_same_trace(self):
        a = StreamingWebSearch(num_docs=10, seed=5)
        b = StreamingWebSearch(num_docs=10, seed=5)
        events_a = list(a.trace(20))
        events_b = list(b.trace(20))
        assert [(e.timestamp, e.op, e.doc) for e in events_a] == [
            (e.timestamp, e.op, e.doc) for e in events_b
        ]
        assert a.live_docs == b.live_docs

    def test_timestamps_increase(self):
        workload = StreamingWebSearch(num_docs=8, seed=2)
        stamps = [event.timestamp for event in workload.trace(15)]
        assert stamps == sorted(stamps)
        assert all(later > 0 for later in stamps)

    def test_insert_fraction_one_only_inserts(self):
        workload = StreamingWebSearch(num_docs=5, seed=3, insert_fraction=1.0)
        events = list(workload.trace(10))
        assert all(event.op == "insert" for event in events)
        assert len(workload.live_docs) == 15

    def test_insert_fraction_validated(self):
        with pytest.raises(ValueError):
            StreamingWebSearch(insert_fraction=1.5)

    def test_deletion_only_stream_drains_then_raises(self):
        workload = StreamingWebSearch(num_docs=4, seed=2, insert_fraction=0.0)
        events = list(workload.trace(4))
        assert all(event.op == "delete" for event in events)
        assert workload.live_docs == []
        with pytest.raises(ValueError):
            workload.step()

    def test_mixed_stream_keeps_two_doc_floor(self):
        workload = StreamingWebSearch(num_docs=3, seed=6, insert_fraction=0.2)
        for _ in range(40):
            workload.step()
            assert len(workload.live_docs) >= 2


class TestDatabaseState:
    def test_events_mutate_docs_and_results(self):
        workload = StreamingWebSearch(num_docs=6, seed=7, insert_fraction=1.0)
        docs = workload.db.relation(websearch.DOCS.name)
        results = workload.db.relation(websearch.RESULTS.name)
        before_docs, before_results = len(docs), len(results)
        event = workload.step()
        assert isinstance(event, UpdateEvent)
        assert len(docs) == before_docs + 1
        # one docs row + one results row per covered intent
        assert len(results) == before_results + len(event.rows) - 1

    def test_retire_removes_all_rows_and_coverage(self):
        workload = StreamingWebSearch(num_docs=6, seed=7)
        doc = workload.live_docs[0]
        event = workload.retire(doc)
        assert event.op == "delete"
        assert doc not in workload.live_docs
        docs = workload.db.relation(websearch.DOCS.name)
        results = workload.db.relation(websearch.RESULTS.name)
        assert all(row["doc"] != doc for row in docs.rows)
        assert all(row["doc"] != doc for row in results.rows)
        with pytest.raises(ValueError):
            workload.retire(doc)

    def test_live_distance_sees_inserted_docs(self):
        workload = StreamingWebSearch(num_docs=5, seed=11, insert_fraction=1.0)
        event = workload.step()
        docs = workload.db.relation(websearch.DOCS.name)
        new_row = next(row for row in docs.rows if row["doc"] == event.doc)
        other = next(row for row in docs.rows if row["doc"] != event.doc)
        # A snapshot distance (websearch.intent_distance) would see an
        # empty coverage set for the new doc; the live one must not.
        value = workload.distance(new_row, other)
        assert 0.0 <= value <= 1.0
        same = workload.distance(new_row, new_row)
        assert same == 0.0

    def test_instances_share_kernel_cache_key(self):
        from repro.engine import DiversificationEngine

        workload = StreamingWebSearch(num_docs=8, seed=13)
        engine = DiversificationEngine(algorithm="mmr")
        engine.run(workload.make_instance(k=3))
        engine.run(workload.make_instance(k=4, lam=0.8))
        assert engine.stats.misses == 1
        assert engine.stats.hits == 1
