"""Tests for the workload generators (gifts, courses, teams, synthetic)."""

from repro.core import diversify as _api  # noqa: F401 (import check)
from repro.relational.ast import QueryLanguage
from repro.relational.evaluate import evaluate
from repro.workloads import courses, gifts, synthetic, teams


class TestGifts:
    def test_generate_deterministic(self):
        a = gifts.generate(num_items=10, num_history=20, seed=5)
        b = gifts.generate(num_items=10, num_history=20, seed=5)
        assert {r.values for r in a.relation("catalog").rows} == {
            r.values for r in b.relation("catalog").rows
        }

    def test_schemas_match_paper(self):
        db = gifts.generate(num_items=5, num_history=5)
        assert db.relation("catalog").schema.attributes == (
            "item", "type", "price", "inStock",
        )
        assert db.relation("history").schema.attributes == (
            "item", "buyer", "recipient", "gender", "age", "rel", "event", "rating",
        )

    def test_cq_query_language_and_semantics(self):
        db = gifts.generate(num_items=20, num_history=10, seed=1)
        q = gifts.peter_query_cq(low=10, high=90)
        assert q.language is QueryLanguage.CQ
        answers = evaluate(q, db)
        prices = {
            row["price"]
            for row in db.relation("catalog").rows
            if 10 <= row["price"] <= 90
        }
        assert len(answers) == len(
            {r["item"] for r in db.relation("catalog").rows if 10 <= r["price"] <= 90}
        )

    def test_fo_query_excludes_past_gifts(self):
        db = gifts.generate(num_items=20, num_history=60, seed=2)
        buyer, recipient = None, None
        for row in db.relation("history").rows:
            item_price = next(
                r["price"]
                for r in db.relation("catalog").rows
                if r["item"] == row["item"]
            )
            if 5 <= item_price <= 100:
                buyer, recipient, item = row["buyer"], row["recipient"], row["item"]
                break
        assert buyer is not None
        q = gifts.peter_query(buyer=buyer, recipient=recipient, low=5, high=100)
        assert q.language is QueryLanguage.FO
        answers = {r["item"] for r in evaluate(q, db).rows}
        assert item not in answers

    def test_relevance_non_negative_and_uses_history(self):
        db = gifts.generate(seed=4)
        rel = gifts.relevance_from_history(db)
        for row in list(db.relation("catalog").rows)[:10]:
            item_row = row.project(("item",))
            assert rel(item_row) >= 0.0

    def test_type_distance_categories(self):
        db = gifts.generate(seed=4)
        dis = gifts.type_distance(db)
        rows = list(db.relation("catalog").rows)
        items = {r["type"]: r.project(("item",)) for r in rows}
        if "jewelry" in items and "fashion" in items:
            assert dis(items["jewelry"], items["fashion"]) == 1.0
        if "artsy" in items and "educational" in items:
            assert dis(items["artsy"], items["educational"]) == 2.0


class TestCourses:
    def test_prerequisites_constraint_set(self):
        sigma = courses.prerequisite_constraints()
        assert len(sigma) == len(courses.PREREQUISITES)

    def test_constraints_enforced(self):
        db = courses.generate()
        rows = {r["id"]: r for r in db.relation("courses").rows}
        sigma = courses.prerequisite_constraints()
        # The transitive closure: CS450 → {CS220, CS350}, CS220 → {CS101}.
        ok = [rows["CS450"], rows["CS220"], rows["CS350"], rows["CS101"]]
        bad = [rows["CS450"], rows["CS220"], rows["CS101"]]  # CS350 missing
        assert sigma.satisfied_by(ok)
        assert not sigma.satisfied_by(bad)

    def test_extra_courses(self):
        db = courses.generate(extra_courses=5)
        assert len(db.relation("courses")) == 17

    def test_scoring_functions(self):
        db = courses.generate()
        rel = courses.rating_relevance()
        dis = courses.area_distance()
        rows = list(db.relation("courses").rows)
        assert rel(rows[0]) > 0
        same_area = [r for r in rows if r["area"] == "systems"]
        other = next(r for r in rows if r["area"] == "theory")
        assert dis(same_area[0], other) == 2.0


class TestTeams:
    def test_quota_constraint(self):
        db = teams.generate(num_players=9)
        rows = list(db.relation("players").rows)
        centers = [r for r in rows if r["position"] == "center"]
        sigma = teams.quota_constraints()
        assert sigma.satisfied_by(centers[:2])
        if len(centers) >= 3:
            assert not sigma.satisfied_by(centers[:3])

    def test_conflicts(self):
        db = teams.generate(num_players=6)
        rows = {r["id"]: r for r in db.relation("players").rows}
        sigma = teams.conflict_constraints([("p00", "p01")])
        assert not sigma.satisfied_by([rows["p00"], rows["p01"]])
        assert sigma.satisfied_by([rows["p00"], rows["p02"]])

    def test_position_distance(self):
        db = teams.generate(num_players=6)
        rows = list(db.relation("players").rows)
        dis = teams.position_distance()
        same = [r for r in rows if r["position"] == "center"]
        diff = next(r for r in rows if r["position"] != "center")
        if len(same) >= 2:
            assert dis(same[0], same[1]) == 0.0
        assert dis(same[0], diff) == 1.0


class TestSynthetic:
    def test_random_database_size(self):
        db = synthetic.random_database(n=15, seed=1)
        assert len(db.relation("items")) == 15

    def test_random_instance_complete(self):
        instance = synthetic.random_instance(n=10, k=3, seed=2)
        assert instance.answer_count == 10
        subset = instance.answers()[:3]
        assert instance.value(subset) >= 0

    def test_euclidean_is_metric_triangle(self):
        db = synthetic.random_database(n=6, seed=3)
        dis = synthetic.euclidean_distance()
        rows = list(db.relation("items").rows)
        for a in rows[:4]:
            for b in rows[:4]:
                for c in rows[:4]:
                    assert dis(a, c) <= dis(a, b) + dis(b, c) + 1e-9

    def test_graph_database_and_random_cq(self):
        db = synthetic.graph_database(nodes=8, edge_prob=0.4, seed=1)
        q = synthetic.random_cq(num_atoms=2, num_head=2, seed=1)
        result = evaluate(q, db)
        assert result.schema.arity == 2

    def test_random_ucq_evaluates(self):
        db = synthetic.graph_database(nodes=7, edge_prob=0.5, seed=2)
        q = synthetic.random_ucq(branches=2, seed=2)
        assert q.language.value in ("UCQ", "∃FO+")
        evaluate(q, db)  # must not raise

    def test_scaling_database_grows(self):
        small = synthetic.scaling_database(5)
        large = synthetic.scaling_database(50)
        assert len(large.relation("items")) > len(small.relation("items"))
