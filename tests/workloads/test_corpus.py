"""DocumentCorpus: deterministic generation, lazy rows, engine surfaces."""

import pytest

from repro.engine import numpy_available
from repro.workloads import corpus

BACKENDS = [False] + ([True] if numpy_available() else [])


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_generation_is_deterministic_per_backend(use_numpy):
    a = corpus.generate(num_docs=120, use_numpy=use_numpy)
    b = corpus.generate(num_docs=120, use_numpy=use_numpy)
    assert a.texts == b.texts or all(
        list(x) == list(y) for x, y in zip(a.texts, b.texts)
    )
    assert [a.feature_tuple(i) for i in range(5)] == [
        b.feature_tuple(i) for i in range(5)
    ]
    assert list(a.topics[:10]) == list(b.topics[:10])
    assert a.row(7) == b.row(7)


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_shapes_and_topic_structure(use_numpy):
    documents = corpus.generate(num_docs=90, num_topics=5, use_numpy=use_numpy)
    assert documents.n == 90
    assert len(documents.texts) == 90
    assert len(documents.scores) == 90
    assert all(0 <= int(t) < 5 for t in documents.topics)
    # Zipf skew: the head topic is at least as crowded as the tail one.
    counts = [0] * 5
    for t in documents.topics:
        counts[int(t)] += 1
    assert counts[0] >= counts[4]


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_rows_materialize_lazily_and_memoize(use_numpy):
    documents = corpus.generate(num_docs=50, use_numpy=use_numpy)
    assert documents._rows == {}
    row = documents.row(3)
    assert documents.row(3) is row
    assert len(documents._rows) == 1
    assert row["doc"] == 3
    assert row["text"] == documents.text(3)


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_row_vector_is_the_feature_tuple(use_numpy):
    """The provider recovers the exact geometry the ANN index searched:
    the row carries its feature vector by value."""
    documents = corpus.generate(num_docs=40, use_numpy=use_numpy)
    provider = documents.provider()
    for i in (0, 7, 39):
        row = documents.row(i)
        assert row["vector"] == documents.feature_tuple(i)
        assert tuple(provider.features_of(row)) == documents.feature_tuple(i)


def test_provider_is_memoized_and_named():
    documents = corpus.generate(num_docs=10)
    assert documents.provider() is documents.provider()
    assert documents.provider().name == "corpus-topics"


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_instance_and_full_instance(use_numpy):
    documents = corpus.generate(num_docs=30, use_numpy=use_numpy)
    pool = documents.instance([5, 1, 9], k=2)
    assert pool.answer_count == 3
    assert {row["doc"] for row in pool.answers()} == {1, 5, 9}
    full = documents.full_instance(k=4)
    assert full.answer_count == 30
    assert full.k == 4


def test_query_surfaces():
    documents = corpus.generate(num_docs=20, num_topics=4)
    text = documents.query_text(1)
    assert all(token.startswith("t1w") for token in text.split())
    assert documents.query_features(1) == documents.topic_centers[1]
    # Topic indices wrap instead of erroring.
    assert documents.query_text(5) == documents.query_text(1)


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_retriever_cuts_toward_the_queried_topic(use_numpy):
    documents = corpus.generate(num_docs=400, use_numpy=use_numpy)
    cut = documents.retriever().retrieve(documents.query_text(0), pool_size=40)
    topics = [int(documents.topics[i]) for i in cut.indices]
    # The hybrid pool should be dominated by the queried topic.
    assert topics.count(0) >= len(topics) * 0.5


def test_validation():
    with pytest.raises(ValueError):
        corpus.DocumentCorpus(num_docs=-1)
    with pytest.raises(ValueError):
        corpus.DocumentCorpus(num_docs=5, num_topics=0)
    empty = corpus.DocumentCorpus(num_docs=0, use_numpy=False)
    assert empty.n == 0
