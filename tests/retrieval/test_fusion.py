"""Fusion rules: exact RRF / weighted arithmetic, ties, validation."""

import pytest

from repro.retrieval import DEFAULT_RRF_K, fuse
from repro.retrieval.ann import RetrievalError

LEXICAL = [(0, 10.0), (1, 8.0), (2, 1.0)]
VECTOR = [(1, -0.1), (3, -0.2), (0, -0.9)]


def test_rrf_matches_hand_computation():
    fused = dict(fuse([LEXICAL, VECTOR], pool_size=10))
    k = DEFAULT_RRF_K
    assert fused[0] == pytest.approx(1 / (k + 1) + 1 / (k + 3))
    assert fused[1] == pytest.approx(1 / (k + 2) + 1 / (k + 1))
    assert fused[2] == pytest.approx(1 / (k + 3))
    assert fused[3] == pytest.approx(1 / (k + 2))


def test_rrf_weights_scale_contributions():
    fused = dict(fuse([LEXICAL, VECTOR], pool_size=10, weights=[2.0, 0.0]))
    k = DEFAULT_RRF_K
    assert fused == {
        0: pytest.approx(2 / (k + 1)),
        1: pytest.approx(2 / (k + 2)),
        2: pytest.approx(2 / (k + 3)),
    }


def test_weighted_min_max_normalization():
    fused = dict(fuse([LEXICAL, VECTOR], pool_size=10, method="weighted"))
    # Lexical spans [1, 10]; vector spans [-0.9, -0.1].
    assert fused[0] == pytest.approx(1.0 + 0.0)
    assert fused[1] == pytest.approx(7.0 / 9.0 + 1.0)
    assert fused[3] == pytest.approx((-0.2 + 0.9) / 0.8)


def test_weighted_constant_list_normalizes_to_one():
    fused = dict(fuse([[(4, 2.5), (9, 2.5)]], pool_size=10, method="weighted"))
    assert fused == {4: 1.0, 9: 1.0}


def test_ties_break_by_document_id():
    fused = fuse([[(9, 1.0), (2, 1.0)]], pool_size=10, method="weighted")
    assert [doc for doc, _ in fused] == [2, 9]


def test_pool_size_truncates_after_ranking():
    full = fuse([LEXICAL, VECTOR], pool_size=10)
    assert fuse([LEXICAL, VECTOR], pool_size=2) == full[:2]
    assert fuse([LEXICAL, VECTOR], pool_size=0) == []


def test_validation_errors():
    with pytest.raises(RetrievalError):
        fuse([LEXICAL], pool_size=5, method="nope")
    with pytest.raises(RetrievalError):
        fuse([LEXICAL, VECTOR], pool_size=5, weights=[1.0])
    with pytest.raises(RetrievalError):
        fuse([LEXICAL], pool_size=5, weights=[-1.0])
