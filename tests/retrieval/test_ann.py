"""ANN index: exact re-rank, deterministic buckets, metric awareness."""

import random

import pytest

from repro.core.providers import resolve_metric
from repro.engine import numpy_available
from repro.retrieval import ANN_METHODS, AnnIndex, RetrievalError

BACKENDS = [False] + ([True] if numpy_available() else [])


def clustered_features(n, dim=4, clusters=3, seed=11):
    rng = random.Random(seed)
    centers = [
        tuple(rng.random() * 4.0 for _ in range(dim)) for _ in range(clusters)
    ]
    return [
        tuple(
            c + rng.gauss(0.0, 0.15)
            for c in centers[i % clusters]
        )
        for i in range(n)
    ]


def brute_force(features, metric, query, top_n):
    metric = resolve_metric(metric)
    scored = sorted(
        ((i, metric.scalar(vector, query)) for i, vector in enumerate(features)),
        key=lambda pair: (pair[1], pair[0]),
    )
    return scored[:top_n]


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_exact_search_is_brute_force(use_numpy):
    features = clustered_features(60)
    index = AnnIndex(features, use_numpy=use_numpy)
    query = features[7]
    expected = brute_force(features, "euclidean", query, 10)
    got = index.exact_search(query, 10)
    assert [doc for doc, _ in got] == [doc for doc, _ in expected]
    for (_, got_d), (_, want_d) in zip(got, expected):
        assert got_d == pytest.approx(want_d, rel=1e-12)


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("method", ANN_METHODS)
def test_full_gather_equals_exact(use_numpy, method):
    """Oversampling past n opens every bucket — the approximate search
    must then coincide with brute force (the re-rank is exact)."""
    features = clustered_features(50)
    index = AnnIndex(features, method=method, use_numpy=use_numpy)
    query = features[3]
    assert index.search(query, 8, oversample=50) == index.exact_search(query, 8)


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_search_distances_are_exact_and_sorted(use_numpy):
    features = clustered_features(80)
    index = AnnIndex(features, use_numpy=use_numpy)
    metric = resolve_metric("euclidean")
    result = index.search(features[0], 12)
    assert len(result) == 12
    distances = [d for _, d in result]
    assert distances == sorted(distances)
    for doc, distance in result:
        assert distance == pytest.approx(
            metric.scalar(features[doc], features[0]), rel=1e-12
        )


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_repeated_builds_are_deterministic(use_numpy):
    features = clustered_features(70)
    a = AnnIndex(features, use_numpy=use_numpy, seed=5)
    b = AnnIndex(features, use_numpy=use_numpy, seed=5)
    assert a._buckets == b._buckets
    query = features[11]
    assert a.search(query, 9) == b.search(query, 9)


def test_method_defaults_follow_the_metric():
    features = clustered_features(20)
    assert AnnIndex(features, metric="euclidean").method == "projection"
    binary = [(float(i % 2), float(i % 3 == 0)) for i in range(20)]
    assert AnnIndex(binary, metric="jaccard").method == "cluster"


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_cluster_method_respects_the_metric(use_numpy):
    binary = [(float(i % 2), float((i // 2) % 2), 1.0) for i in range(24)]
    index = AnnIndex(binary, metric="jaccard", method="cluster", use_numpy=use_numpy)
    query = binary[5]
    expected = brute_force(binary, "jaccard", query, 6)
    assert index.search(query, 6, oversample=24) == [
        (doc, pytest.approx(dist, rel=1e-12)) for doc, dist in expected
    ]


def test_validation_errors():
    features = clustered_features(10)
    with pytest.raises(RetrievalError):
        AnnIndex(features, method="nope")
    index = AnnIndex(features)
    with pytest.raises(RetrievalError):
        index.search((1.0,), 5)  # dim mismatch
    with pytest.raises(RetrievalError):
        index.search(None, 5)


def test_empty_index_returns_nothing():
    index = AnnIndex([], use_numpy=False)
    assert index.search((1.0, 2.0), 5) == []
    assert index.exact_search((1.0, 2.0), 5) == []


@pytest.mark.skipif(not numpy_available(), reason="needs both backends")
def test_backend_parity_on_exact_search():
    features = clustered_features(90)
    query = features[42]
    got_np = AnnIndex(features, use_numpy=True).exact_search(query, 15)
    got_py = AnnIndex(features, use_numpy=False).exact_search(query, 15)
    assert [doc for doc, _ in got_np] == [doc for doc, _ in got_py]
    for (_, d_np), (_, d_py) in zip(got_np, got_py):
        assert d_np == d_py  # Metric.block == Metric.scalar bit-for-bit
