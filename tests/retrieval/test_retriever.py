"""CandidateRetriever: pipeline selection, degradation, PRF, recall."""

import pytest

from repro.engine import numpy_available
from repro.retrieval import (
    DEFAULT_POOL_SIZE,
    CandidateRetriever,
    RetrievalError,
    recall,
    tokenize,
)
from repro.workloads import corpus

BACKENDS = [False] + ([True] if numpy_available() else [])


def make_corpus(n=300, use_numpy=False):
    return corpus.generate(num_docs=n, use_numpy=use_numpy)


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_hybrid_runs_all_three_stages(use_numpy):
    documents = make_corpus(use_numpy=use_numpy)
    retriever = documents.retriever()
    result = retriever.retrieve(documents.query_text(0), pool_size=40)
    assert result.stages == ("bm25", "ann", "fusion")
    assert result.retriever == "hybrid"
    assert 0 < len(result) <= 40
    assert result.corpus_size == documents.n
    assert len(result.indices) == len(result.scores)
    assert list(result.scores) == sorted(result.scores, reverse=True)


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_single_stage_pipelines(use_numpy):
    documents = make_corpus(use_numpy=use_numpy)
    retriever = documents.retriever()
    lexical = retriever.retrieve(
        documents.query_text(0), pool_size=20, retriever="bm25"
    )
    assert lexical.stages == ("bm25",)
    vector = retriever.retrieve(
        query_features=documents.query_features(0),
        pool_size=20,
        retriever="ann",
    )
    assert vector.stages == ("ann",)
    # ANN scores are negated distances: higher is better, best first.
    assert list(vector.scores) == sorted(vector.scores, reverse=True)
    assert all(score <= 0.0 for score in vector.scores)


def test_text_only_retriever_degrades_hybrid_to_bm25():
    documents = make_corpus()
    retriever = CandidateRetriever(texts=documents.texts, use_numpy=False)
    result = retriever.retrieve(documents.query_text(0), pool_size=15)
    assert result.stages == ("bm25",)
    with pytest.raises(RetrievalError):
        retriever.retrieve(
            query_features=documents.query_features(0), retriever="ann"
        )


def test_features_only_retriever_degrades_hybrid_to_ann():
    documents = make_corpus()
    retriever = CandidateRetriever(
        features=documents.features, use_numpy=False
    )
    result = retriever.retrieve(
        query_features=documents.query_features(0), pool_size=15
    )
    assert result.stages == ("ann",)
    with pytest.raises(RetrievalError):
        retriever.retrieve("some text", retriever="bm25")


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_prf_derives_the_vector_from_bm25_hits(use_numpy):
    """Hybrid with text only still runs the ANN stage (PRF centroid),
    and repeating the query is deterministic."""
    documents = make_corpus(use_numpy=use_numpy)
    retriever = documents.retriever()
    first = retriever.retrieve(documents.query_text(1), pool_size=30)
    second = retriever.retrieve(documents.query_text(1), pool_size=30)
    assert "ann" in first.stages
    assert first.indices == second.indices
    assert first.scores == second.scores


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_exact_twin_shares_everything_but_the_gather(use_numpy):
    documents = make_corpus(use_numpy=use_numpy)
    retriever = documents.retriever()
    exact = retriever.retrieve(
        documents.query_text(0), pool_size=50, exact=True
    )
    approx = retriever.retrieve(documents.query_text(0), pool_size=50)
    assert exact.stages == approx.stages
    # At n=300 the gather covers the whole corpus: identical cuts.
    assert exact.indices == approx.indices


def test_validation_errors():
    documents = make_corpus()
    with pytest.raises(RetrievalError):
        CandidateRetriever()
    with pytest.raises(RetrievalError):
        CandidateRetriever(
            texts=documents.texts[:10], features=documents.features, use_numpy=False
        )
    retriever = documents.retriever()
    with pytest.raises(RetrievalError):
        retriever.retrieve(documents.query_text(0), retriever="nope")
    with pytest.raises(RetrievalError):
        retriever.retrieve(documents.query_text(0), pool_size=0)
    with pytest.raises(RetrievalError):
        retriever.retrieve()  # nothing to run on


def test_result_to_dict_summary():
    documents = make_corpus()
    result = documents.retriever().retrieve(documents.query_text(0), pool_size=25)
    payload = result.to_dict()
    assert payload["retriever"] == "hybrid"
    assert payload["pool"] == len(result)
    assert payload["pool_size"] == 25
    assert payload["corpus_size"] == documents.n
    assert payload["stages"] == ["bm25", "ann", "fusion"]
    assert payload["elapsed_ms"] >= 0.0
    assert "indices" not in payload


def test_recall_helper():
    assert recall([1, 2, 3], [2, 3, 4]) == pytest.approx(2 / 3)
    assert recall([], [1]) == 0.0
    assert recall([1], []) == 1.0


def test_default_pool_size_is_kernel_sized():
    assert DEFAULT_POOL_SIZE == 2000


def test_from_rows_matches_manual_construction():
    """from_rows is sugar for tokenizing each row's text and pulling its
    feature vector off the provider, in row order — nothing more."""
    documents = make_corpus(n=150)
    instance = documents.full_instance()
    rows = instance.answers()
    provider = documents.provider()
    from_rows = CandidateRetriever.from_rows(rows, provider, use_numpy=False)
    from repro.retrieval import row_text

    manual = CandidateRetriever(
        texts=[tokenize(row_text(row)) for row in rows],
        features=[provider.features_of(row) for row in rows],
        metric=provider.metric,
        use_numpy=False,
    )
    query = documents.query_text(0)
    cut_rows = from_rows.retrieve(query, pool_size=30)
    cut_manual = manual.retrieve(query, pool_size=30)
    assert cut_rows.indices == cut_manual.indices
    assert cut_rows.scores == cut_manual.scores
    assert from_rows.bm25.vocabulary_size == len(
        {token for text in documents.texts for token in tokenize(" ".join(text))}
    )
