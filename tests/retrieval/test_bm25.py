"""BM25 index: exact Okapi scoring, posting-list bounds, backend parity."""

import math
import random

import pytest

from repro.engine import numpy_available
from repro.retrieval import BM25Index, row_text, tokenize
from repro.relational.schema import RelationSchema

BACKENDS = [False] + ([True] if numpy_available() else [])

DOCS = [
    ["solar", "panels", "efficiency"],
    ["solar", "wind", "grid"],
    ["wind", "turbine", "offshore", "wind"],
    ["battery", "storage", "grid", "grid"],
]


def reference_score(docs, query, doc_id, k1=1.5, b=0.75):
    """Straight-from-the-formula Okapi BM25 for one document."""
    n = len(docs)
    avgdl = sum(len(d) for d in docs) / n
    score = 0.0
    for term in query:
        df = sum(1 for d in docs if term in d)
        if df == 0:
            continue
        tf = docs[doc_id].count(term)
        if tf == 0:
            continue
        idf = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
        score += idf * (tf * (k1 + 1.0)) / (
            tf + k1 * (1.0 - b + b * len(docs[doc_id]) / avgdl)
        )
    return score


def test_tokenize_lowercases_and_splits():
    assert tokenize("Solar PANELS, 42 watts!") == ["solar", "panels", "42", "watts"]
    assert tokenize(3.5) == ["3", "5"]
    assert tokenize("") == []


def test_row_text_prefers_text_attribute():
    schema = RelationSchema("docs", ("doc", "text", "score"))
    row = schema.row("d1", "solar panels", 0.5)
    assert row_text(row) == "solar panels"


def test_row_text_falls_back_to_all_values():
    schema = RelationSchema("items", ("id", "colour", "weight"))
    row = schema.row(7, "red", 2.5)
    assert row_text(row) == "7 red 2.5"


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_scores_match_reference_formula(use_numpy):
    index = BM25Index(DOCS, use_numpy=use_numpy)
    ranked = dict(index.search(["solar", "grid"]))
    for doc_id in range(len(DOCS)):
        expected = reference_score(DOCS, ["solar", "grid"], doc_id)
        if expected == 0.0:
            assert doc_id not in ranked
        else:
            assert ranked[doc_id] == pytest.approx(expected, rel=1e-12)


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_disjoint_documents_never_appear(use_numpy):
    index = BM25Index(DOCS, use_numpy=use_numpy)
    hits = [doc for doc, _ in index.search(["battery"])]
    assert hits == [3]
    assert index.search(["unseen"]) == []


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_ties_break_by_document_id(use_numpy):
    docs = [["a", "b"], ["a", "b"], ["a", "b"]]
    index = BM25Index(docs, use_numpy=use_numpy)
    assert [doc for doc, _ in index.search(["a"])] == [0, 1, 2]


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_top_n_is_a_prefix_of_the_full_ranking(use_numpy):
    index = BM25Index(DOCS, use_numpy=use_numpy)
    full = index.search(["solar", "grid", "wind"])
    assert index.search(["solar", "grid", "wind"], top_n=2) == full[:2]
    assert index.search(["solar"], top_n=0) == []


def test_vocabulary_and_idf():
    index = BM25Index(DOCS, use_numpy=False)
    assert index.vocabulary_size == 9
    assert index.document_frequency("grid") == 2
    assert index.document_frequency("unseen") == 0
    assert index.idf("unseen") == 0.0
    assert index.idf("grid") == pytest.approx(
        math.log(1.0 + (4 - 2 + 0.5) / (2 + 0.5))
    )


@pytest.mark.skipif(not numpy_available(), reason="needs both backends")
@pytest.mark.parametrize("seed", range(3))
def test_backend_parity_float_for_float(seed):
    rng = random.Random(seed)
    vocabulary = [f"w{i}" for i in range(30)]
    docs = [
        [rng.choice(vocabulary) for _ in range(rng.randrange(1, 12))]
        for _ in range(120)
    ]
    query = [rng.choice(vocabulary) for _ in range(4)]
    ranked_np = BM25Index(docs, use_numpy=True).search(query)
    ranked_py = BM25Index(docs, use_numpy=False).search(query)
    assert len(ranked_np) == len(ranked_py)
    for (doc_np, score_np), (doc_py, score_py) in zip(ranked_np, ranked_py):
        assert doc_np == doc_py
        assert score_np == score_py  # bit-for-bit, not approx
