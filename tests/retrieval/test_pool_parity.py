"""The exactness contract of the retrieval front end.

Satellite 3 — pool parity: diversifying a retrieved pool through
``engine.run(request=)`` is float-for-float identical to building the
pool instance by hand and running the engine directly on it.  Retrieval
decides *which* rows the kernel sees, never *how* they are scored.

Satellite 4 — recall gate: the hybrid cut at pool_size=2000 recovers at
least 90% of the exact fused top-2000 on a seeded corpus, per backend.
"""

import pytest

from repro.api import DiversifyRequest
from repro.engine import DiversificationEngine, numpy_available
from repro.retrieval import recall
from repro.workloads import corpus

from repro.core.objectives import ObjectiveKind

BACKENDS = [False] + ([True] if numpy_available() else [])
ALGORITHMS = [
    ("greedy_max_sum", ObjectiveKind.MAX_SUM),
    ("greedy_max_min", ObjectiveKind.MAX_MIN),
]


def run_both_ways(
    documents, base, engine, algorithm, k, query_text, pool_size,
    kind=None,
):
    """One solve through the request path, one through a hand-built pool
    instance over the same cut, on a fresh engine."""
    via_request = engine.run(
        request=DiversifyRequest(
            instance=base,
            k=k,
            algorithm=algorithm,
            query_text=query_text,
            pool_size=pool_size,
        )
    )
    cut = engine.retrieve(base, query_text, pool_size=pool_size)
    answers = base.answers()
    docs = [answers[i]["doc"] for i in cut.indices]
    if kind is None:
        kind = base.objective.kind
    direct_instance = documents.instance(docs, k=k, kind=kind)
    direct_engine = DiversificationEngine(use_numpy=engine.use_numpy)
    direct = direct_engine.run(direct_instance, algorithm)
    return via_request, direct


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("algorithm,kind", ALGORITHMS)
def test_pool_diversification_matches_direct_run(use_numpy, algorithm, kind):
    documents = corpus.generate(num_docs=400, use_numpy=use_numpy)
    base = documents.full_instance(k=8, kind=kind)
    engine = DiversificationEngine(use_numpy=use_numpy)
    via_request, direct = run_both_ways(
        documents, base, engine, algorithm, k=8,
        query_text=documents.query_text(0), pool_size=60, kind=kind,
    )
    assert via_request is not None and direct is not None
    assert via_request.value == direct.value  # float-for-float, not approx
    assert via_request.rows == direct.rows
    assert via_request.retrieval is not None
    assert direct.retrieval is None


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_pool_parity_across_k_and_lambda(use_numpy):
    """k/λ variants share one memoized pool kernel — and every variant
    still matches its hand-built twin exactly."""
    documents = corpus.generate(num_docs=300, use_numpy=use_numpy)
    engine = DiversificationEngine(use_numpy=use_numpy)
    query = documents.query_text(1)
    # ONE base materialization: the request applies k/λ on top through
    # the identity-preserving variant constructors, so every variant
    # lands on the same memoized pool.
    base = documents.full_instance(k=10)
    cut = engine.retrieve(base, query, pool_size=50)
    answers = base.answers()
    docs = [answers[i]["doc"] for i in cut.indices]
    for k, lam in [(3, 0.0), (6, 0.5), (10, 1.0)]:
        via_request = engine.run(
            request=DiversifyRequest(
                instance=base, k=k, lam=lam, algorithm="greedy_max_sum",
                query_text=query, pool_size=50,
            )
        )
        direct = DiversificationEngine(use_numpy=use_numpy).run(
            documents.instance(docs, k=k, lam=lam), "greedy_max_sum"
        )
        assert via_request.value == direct.value
        assert via_request.rows == direct.rows
    # All three variants cut the same (query, pool_size): one pool miss.
    assert engine.retrieval_stats["pool_misses"] == 1
    assert engine.retrieval_stats["pool_hits"] == 2


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_pool_parity_with_duplicate_rows(use_numpy):
    """Value-distinct rows with identical text and features (mirrored
    documents) keep the contract: duplicates survive the cut as distinct
    rows and the floats still agree."""
    documents = corpus.generate(num_docs=120, use_numpy=use_numpy)
    rows = [documents.row(i) for i in range(120)]
    # Mirror the first 30 documents under fresh ids: same text, topic,
    # score, and vector — only the `doc` value differs.
    mirrored = [
        corpus.DOCS.row(1000 + i, row["text"], row["topic"], row["score"], row["vector"])
        for i, row in enumerate(rows[:30])
    ]
    from repro.core.objectives import Objective, ObjectiveKind
    from repro.relational.schema import Database, Relation

    relation = Relation(corpus.DOCS, rows + mirrored)
    objective = Objective.from_provider(
        ObjectiveKind.MAX_SUM, documents.provider(), lam=0.5
    )
    from repro.core.instance import DiversificationInstance

    base = DiversificationInstance(
        corpus.documents_query(), Database([relation]), k=6, objective=objective
    )
    engine = DiversificationEngine(use_numpy=use_numpy)
    query = documents.query_text(0)
    via_request = engine.run(
        request=DiversifyRequest(
            instance=base, k=6, algorithm="greedy_max_sum",
            query_text=query, pool_size=40,
        )
    )
    cut = engine.retrieve(base, query, pool_size=40)
    answers = base.answers()
    pool_rows = [answers[i] for i in cut.indices]
    assert len(set(pool_rows)) == len(pool_rows)  # rows stay value-distinct
    direct_instance = DiversificationInstance(
        corpus.documents_query(),
        Database([Relation(corpus.DOCS, pool_rows)]),
        k=6,
        objective=objective,
    )
    direct = DiversificationEngine(use_numpy=use_numpy).run(
        direct_instance, "greedy_max_sum"
    )
    assert via_request.value == direct.value
    assert via_request.rows == direct.rows


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_empty_cut_returns_none(use_numpy):
    documents = corpus.generate(num_docs=50, use_numpy=use_numpy)
    base = documents.full_instance(k=5)
    engine = DiversificationEngine(use_numpy=use_numpy)
    result = engine.run(
        request=DiversifyRequest(
            instance=base, k=5, algorithm="greedy_max_sum",
            query_text="zzz qqq totally unseen tokens", retriever="bm25",
        )
    )
    assert result is None


# -- satellite 4: the recall gate -----------------------------------------


def assert_recall_gate(use_numpy, n):
    documents = corpus.generate(num_docs=n, use_numpy=use_numpy)
    retriever = documents.retriever()
    for topic in range(3):
        query = documents.query_text(topic)
        cut = retriever.retrieve(query, pool_size=2000)
        truth = retriever.retrieve(query, pool_size=2000, exact=True)
        got = recall(cut.indices, truth.indices)
        assert got >= 0.9, f"recall {got:.4f} < 0.9 for topic {topic} at n={n}"
        assert len(cut) <= 2000


@pytest.mark.skipif(not numpy_available(), reason="corpus-scale gate needs numpy")
def test_recall_gate_at_pool_2000_numpy():
    assert_recall_gate(True, 20_000)


def test_recall_gate_at_pool_2000_python():
    assert_recall_gate(False, 4_000)
