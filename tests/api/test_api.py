"""Tests for the unified request/config API (:mod:`repro.api`)."""

import argparse
import json
import math

import pytest

from repro.api import (
    ApiError,
    DiversifyRequest,
    DiversifyResponse,
    EngineConfig,
    add_engine_config_args,
    canonical_params,
    float_from_json,
    json_float,
)
from repro.core.diversify import diversify
from repro.engine.engine import DiversificationEngine, EngineError, EngineResult
from repro.workloads import synthetic


@pytest.fixture
def instance():
    return synthetic.random_instance(n=25, k=4, seed=3)


class TestScalars:
    def test_nan_round_trip(self):
        assert json_float(float("nan")) is None
        assert math.isnan(float_from_json(None))
        assert json_float(1.5) == 1.5
        assert float_from_json(1.5) == 1.5
        assert json_float(None) is None

    def test_canonical_params_order_insensitive(self):
        assert canonical_params({"b": 2, "a": 1}) == canonical_params({"a": 1, "b": 2})
        assert canonical_params(None) == canonical_params({})


class TestEngineConfig:
    def test_defaults_validate(self):
        config = EngineConfig().validate()
        assert config.cache_size == 8
        assert config.patch_threshold == 0.5

    def test_round_trip(self):
        config = EngineConfig(storage="tiled", dtype="float32", workers=2)
        assert EngineConfig.from_dict(config.to_dict()) == config
        # to_dict is strict JSON
        assert EngineConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ApiError, match="unknown"):
            EngineConfig.from_dict({"storage": "tiled", "zap": 1})

    def test_invalid_combinations(self):
        with pytest.raises(ApiError, match="float64-only"):
            EngineConfig(dtype="float32").validate()
        with pytest.raises(ApiError, match="serially"):
            EngineConfig(workers=4).validate()
        with pytest.raises(ApiError, match="cache_size"):
            EngineConfig(cache_size=0).validate()
        with pytest.raises(ApiError, match="unknown storage"):
            EngineConfig(storage="sparse").validate()

    def test_from_args_layers_over_base(self):
        parser = argparse.ArgumentParser()
        add_engine_config_args(parser)
        args = parser.parse_args(["--storage", "tiled", "--workers", "3"])
        base = EngineConfig(dtype="float32", cache_size=4)
        config = EngineConfig.from_args(args, base=base)
        assert config == EngineConfig(
            storage="tiled", dtype="float32", workers=3, cache_size=4
        )
        # unset flags keep dataclass defaults without a base
        assert EngineConfig.from_args(parser.parse_args([])) == EngineConfig()

    def test_from_env(self):
        env = {
            "REPRO_STORAGE": "tiled",
            "REPRO_WORKERS": "2",
            "REPRO_PATCH_THRESHOLD": "0.25",
            "REPRO_CACHE_SIZE": "3",
        }
        config = EngineConfig.from_env(env)
        assert config == EngineConfig(
            storage="tiled", workers=2, patch_threshold=0.25, cache_size=3
        )
        assert EngineConfig.from_env({}) == EngineConfig()
        with pytest.raises(ApiError, match="REPRO_WORKERS"):
            EngineConfig.from_env({"REPRO_WORKERS": "many"})


class TestSketchedConfig:
    """The sketched/approx knobs added by the capability-negotiation
    refactor, and the canonical keying the CLI + service share."""

    def test_sketched_validation(self):
        EngineConfig(storage="sketched").validate()
        EngineConfig(
            storage="sketched", sketch_columns=8, landmarks="farthest",
            approx=True,
        ).validate()
        with pytest.raises(ApiError, match="float64"):
            EngineConfig(storage="sketched", dtype="float32").validate()
        with pytest.raises(ApiError, match="sketch_columns"):
            EngineConfig(storage="tiled", sketch_columns=8).validate()
        with pytest.raises(ApiError, match="sketch_columns"):
            EngineConfig(storage="sketched", sketch_columns=1).validate()
        with pytest.raises(ApiError, match="landmark"):
            EngineConfig(storage="sketched", landmarks="grid").validate()
        with pytest.raises(ApiError, match="landmark"):
            EngineConfig(landmarks="uniform").validate()
        with pytest.raises(ApiError, match="approx"):
            EngineConfig(approx=True).validate()

    def test_canonical_collapses_spelled_out_defaults(self):
        spelled = EngineConfig(
            storage="dense", dtype="float64", workers=1, block_size=256,
        )
        assert spelled.canonical() == EngineConfig()
        sketched = EngineConfig(storage="sketched", landmarks="uniform")
        assert sketched.canonical() == EngineConfig(storage="sketched")
        # non-defaults survive canonicalization
        kept = EngineConfig(storage="tiled", dtype="float32", workers=2)
        assert kept.canonical() == kept

    def test_sketched_round_trip(self):
        config = EngineConfig(
            storage="sketched", sketch_columns=12, landmarks="relevance",
            approx=True,
        )
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_from_args_and_env(self):
        parser = argparse.ArgumentParser()
        add_engine_config_args(parser)
        args = parser.parse_args(
            ["--storage", "sketched", "--sketch-columns", "16",
             "--landmarks", "farthest", "--approx"]
        )
        assert EngineConfig.from_args(args) == EngineConfig(
            storage="sketched", sketch_columns=16, landmarks="farthest",
            approx=True,
        )
        env = {
            "REPRO_STORAGE": "sketched",
            "REPRO_SKETCH_COLUMNS": "16",
            "REPRO_LANDMARKS": "farthest",
            "REPRO_APPROX": "yes",
        }
        assert EngineConfig.from_env(env) == EngineConfig(
            storage="sketched", sketch_columns=16, landmarks="farthest",
            approx=True,
        )
        with pytest.raises(ApiError, match="REPRO_APPROX"):
            EngineConfig.from_env({"REPRO_APPROX": "maybe"})

    def test_approx_response_carries_certificate(self, instance):
        engine = DiversificationEngine(
            config=EngineConfig(storage="sketched", approx=True)
        )
        response = DiversifyResponse.from_result(engine.run(instance))
        assert response.certificate is not None
        assert response.certificate["strategy"] == "uniform"
        clone = DiversifyResponse.from_dict(
            json.loads(json.dumps(response.to_dict()))
        )
        assert clone == response
        assert clone.certificate == response.certificate


class TestMulticoreConfig:
    """The multicore/memory-bounding knobs: ``workers="auto"``,
    ``parallel``, the resident-tile budgets, and ``spill_dir``."""

    def test_validation(self):
        EngineConfig(workers="auto").validate()  # symbolic; dense-safe
        EngineConfig(
            storage="tiled", workers="auto", parallel="process"
        ).validate()
        EngineConfig(
            storage="tiled",
            max_resident_tiles=4,
            max_resident_bytes=1 << 20,
            spill_dir="/tmp/tiles",
        ).validate()
        # sketched kernels route exact reads through a tiled fallback,
        # so the budgets apply there too
        EngineConfig(storage="sketched", max_resident_tiles=4).validate()
        with pytest.raises(ApiError, match="serially"):
            EngineConfig(parallel="process").validate()
        with pytest.raises(ApiError, match="unknown parallel"):
            EngineConfig(storage="tiled", parallel="gpu").validate()
        with pytest.raises(ApiError, match="max_resident_tiles"):
            EngineConfig(storage="tiled", max_resident_tiles=0).validate()
        with pytest.raises(ApiError, match="cannot spill"):
            EngineConfig(max_resident_bytes=1 << 20).validate()
        with pytest.raises(ApiError, match="cannot spill"):
            EngineConfig(spill_dir="/tmp/tiles").validate()

    def test_canonical_collapses_thread_default(self):
        spelled = EngineConfig(storage="tiled", parallel="thread")
        assert spelled.canonical() == EngineConfig(storage="tiled")
        kept = EngineConfig(storage="tiled", parallel="process")
        assert kept.canonical() == kept

    def test_round_trip(self):
        config = EngineConfig(
            storage="tiled",
            workers="auto",
            parallel="process",
            max_resident_tiles=4,
            max_resident_bytes=1 << 20,
            spill_dir="/tmp/tiles",
        )
        assert EngineConfig.from_dict(config.to_dict()) == config
        assert EngineConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        ) == config

    def test_from_args_and_env(self):
        parser = argparse.ArgumentParser()
        add_engine_config_args(parser)
        args = parser.parse_args(
            ["--storage", "tiled", "--workers", "auto",
             "--parallel", "process", "--max-resident-tiles", "4",
             "--max-resident-bytes", "1048576", "--spill-dir", "/tmp/tiles"]
        )
        expected = EngineConfig(
            storage="tiled", workers="auto", parallel="process",
            max_resident_tiles=4, max_resident_bytes=1048576,
            spill_dir="/tmp/tiles",
        )
        assert EngineConfig.from_args(args) == expected
        env = {
            "REPRO_STORAGE": "tiled",
            "REPRO_WORKERS": "auto",
            "REPRO_PARALLEL": "process",
            "REPRO_MAX_RESIDENT_TILES": "4",
            "REPRO_MAX_RESIDENT_BYTES": "1048576",
            "REPRO_SPILL_DIR": "/tmp/tiles",
        }
        assert EngineConfig.from_env(env) == expected

    def test_workers_flag_rejects_garbage(self):
        parser = argparse.ArgumentParser()
        add_engine_config_args(parser)
        with pytest.raises(SystemExit):
            parser.parse_args(["--workers", "many"])


class TestEngineConfigShim:
    def test_loose_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            engine = DiversificationEngine(storage="tiled", workers=2)
        assert engine.config == EngineConfig(storage="tiled", workers=2)
        assert engine.storage == "tiled"
        assert engine.workers == 2

    def test_config_path_does_not_warn(self, recwarn):
        engine = DiversificationEngine(
            config=EngineConfig(storage="tiled", workers=2)
        )
        assert engine.storage == "tiled"
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_config_and_loose_conflict(self):
        with pytest.raises(EngineError, match="not both"):
            DiversificationEngine(storage="tiled", config=EngineConfig())

    def test_shim_parity_float_for_float(self, instance):
        """Old loose kwargs and the config path agree exactly."""
        with pytest.warns(DeprecationWarning):
            old = DiversificationEngine(
                storage="tiled", dtype="float32", workers=2, cache_size=2
            )
        new = DiversificationEngine(
            config=EngineConfig(
                storage="tiled", dtype="float32", workers=2, cache_size=2
            )
        )
        a = old.run(instance)
        b = new.run(instance)
        assert a.value == b.value
        assert a.rows == b.rows
        assert a.indices == b.indices

    def test_invalid_config_raises_engine_error(self):
        with pytest.raises(EngineError, match="float64-only"):
            DiversificationEngine(config=EngineConfig(dtype="float32"))


class TestDiversifyRequest:
    def test_needs_a_source(self):
        with pytest.raises(ApiError, match="source"):
            DiversifyRequest()

    def test_validates_bounds(self):
        with pytest.raises(ApiError, match="k must be"):
            DiversifyRequest(workload="synthetic", k=0)
        with pytest.raises(ApiError, match="λ"):
            DiversifyRequest(workload="synthetic", lam=1.5)

    def test_key_identity(self, instance):
        a = DiversifyRequest(workload="w", params={"n": 5}, k=3, lam=0.5)
        b = DiversifyRequest(workload="w", params={"n": 5}, k=3, lam=0.5)
        assert a.key() == b.key()
        assert a.key() != DiversifyRequest(workload="w", k=4).key()
        assert a.key() != DiversifyRequest(workload="w", params={"n": 5}, k=3,
                                           lam=0.5, tenant="other").key()
        # instance-backed keys are identity-based
        r1 = DiversifyRequest(instance=instance, k=3)
        r2 = DiversifyRequest(instance=instance, k=3)
        assert r1.key() == r2.key()

    def test_wire_round_trip(self):
        request = DiversifyRequest(
            workload="synthetic", params={"n": 30}, k=5, lam=0.25,
            algorithm="mmr", tenant="t1",
        )
        clone = DiversifyRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert clone == request
        assert clone.key() == request.key()

    def test_instance_backed_is_not_serializable(self, instance):
        with pytest.raises(ApiError, match="in-process only"):
            DiversifyRequest(instance=instance).to_dict()

    def test_from_dict_strictness(self):
        with pytest.raises(ApiError, match="workload"):
            DiversifyRequest.from_dict({})
        with pytest.raises(ApiError, match="unknown"):
            DiversifyRequest.from_dict({"workload": "w", "zap": 1})
        with pytest.raises(ApiError, match="'k' must be"):
            DiversifyRequest.from_dict({"workload": "w", "k": "three"})
        with pytest.raises(ApiError, match="'k' must be"):
            DiversifyRequest.from_dict({"workload": "w", "k": True})

    def test_resolve_preserves_identities(self, instance):
        request = DiversifyRequest(instance=instance, k=2, lam=0.9)
        resolved = request.resolve()
        assert resolved.k == 2
        assert resolved.objective.lam == 0.9
        assert resolved.query is instance.query
        assert resolved.db is instance.db
        assert resolved.objective.relevance is instance.objective.relevance
        assert resolved.objective.distance is instance.objective.distance


class TestRequestExecution:
    def test_engine_run_request(self, instance):
        engine = DiversificationEngine()
        request = DiversifyRequest(instance=instance, k=3, algorithm="mmr")
        result = engine.run(request=request)
        direct = engine.run(instance.with_k(3), algorithm="mmr")
        assert result.value == direct.value
        assert result.rows == direct.rows

    def test_engine_run_instance_is_request_base(self, instance):
        """An explicit instance serves as the request's base (the
        registry-resolved path the service uses)."""
        engine = DiversificationEngine()
        request = DiversifyRequest(workload="any", k=3)
        result = engine.run(instance, request=request)
        assert result.value == engine.run(instance.with_k(3)).value
        with pytest.raises(EngineError, match="needs"):
            engine.run()

    def test_engine_request_shares_kernel(self, instance):
        engine = DiversificationEngine()
        engine.run(request=DiversifyRequest(instance=instance, k=3))
        engine.run(request=DiversifyRequest(instance=instance, k=4, lam=0.8))
        assert engine.stats.misses == 1
        assert engine.stats.hits == 1

    def test_diversify_accepts_request(self, instance):
        value, rows = diversify(DiversifyRequest(instance=instance, k=3))
        direct_value, direct_rows = diversify(instance.with_k(3))
        assert value == direct_value
        assert rows == direct_rows

    def test_sweep_request(self, instance):
        engine = DiversificationEngine()
        grid = engine.sweep(
            request=DiversifyRequest(instance=instance), ks=[2, 3], lams=[0.1, 0.9]
        )
        assert len(grid) == 4
        assert engine.stats.misses == 1


class TestResultSerialization:
    def test_engine_result_round_trip(self, instance):
        engine = DiversificationEngine()
        result = engine.run(instance)
        clone = EngineResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.value == result.value
        assert clone.rows == result.rows
        assert clone.indices == result.indices
        assert clone.algorithm == result.algorithm
        assert clone.backend == result.backend

    def test_indices_point_into_kernel_snapshot(self, instance):
        engine = DiversificationEngine()
        result = engine.run(instance)
        kernel = engine.kernel_for(instance)
        assert tuple(kernel.answers[i] for i in result.indices) == result.rows

    def test_response_round_trip(self, instance):
        engine = DiversificationEngine()
        response = DiversifyResponse.from_result(
            engine.run(instance), cache="coalesced", elapsed_ms=1.25
        )
        clone = DiversifyResponse.from_dict(
            json.loads(json.dumps(response.to_dict()))
        )
        assert clone == response

    def test_infeasible_response(self):
        response = DiversifyResponse.from_result(None)
        assert response.feasible is False
        data = response.to_dict()
        assert data["value"] is None and data["rows"] is None
        assert DiversifyResponse.from_dict(data) == response

    def test_response_rejects_bad_cache(self):
        with pytest.raises(ApiError, match="cache"):
            DiversifyResponse.from_dict(
                {**DiversifyResponse.from_result(None).to_dict(), "cache": "psychic"}
            )
