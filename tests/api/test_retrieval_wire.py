"""DiversifyRequest/Response retrieval fields on the wire.

The compatibility contract: plain requests keep their historical
payload shape byte-for-byte; retrieval fields appear only when a
``query_text`` opted in, and ``from_dict`` stays strict about types.
"""

import pytest

from repro.api import ApiError, DiversifyRequest, DiversifyResponse


def plain_request(**overrides):
    fields = dict(workload="synthetic", params={"n": 40}, k=5)
    fields.update(overrides)
    return DiversifyRequest(**fields)


def retrieval_request(**overrides):
    fields = dict(
        workload="corpus",
        params={"num_docs": 400},
        k=5,
        query_text="t0w0 t0w1",
        pool_size=100,
        retriever="hybrid",
    )
    fields.update(overrides)
    return DiversifyRequest(**fields)


class TestRequestWire:
    def test_roundtrip(self):
        request = retrieval_request()
        rebuilt = DiversifyRequest.from_dict(request.to_dict())
        assert rebuilt == request
        assert rebuilt.wants_retrieval

    def test_plain_payloads_keep_the_historical_shape(self):
        payload = plain_request().to_dict()
        assert set(payload) == {
            "workload", "params", "k", "lam", "algorithm", "tenant",
        }
        assert "query_text" not in payload
        rebuilt = DiversifyRequest.from_dict(payload)
        assert not rebuilt.wants_retrieval
        assert rebuilt.to_dict() == payload

    def test_retrieval_fields_are_emitted_only_when_set(self):
        payload = retrieval_request(pool_size=None, retriever=None).to_dict()
        assert payload["query_text"] == "t0w0 t0w1"
        assert "pool_size" not in payload
        assert "retriever" not in payload

    def test_pool_size_without_query_text_raises(self):
        with pytest.raises(ApiError):
            plain_request(pool_size=100)
        with pytest.raises(ApiError):
            plain_request(retriever="bm25")

    def test_bad_retriever_and_pool_size(self):
        with pytest.raises(ApiError):
            retrieval_request(retriever="lucene")
        with pytest.raises(ApiError):
            retrieval_request(pool_size=0)
        with pytest.raises(ApiError):
            retrieval_request(pool_size=-5)

    def test_from_dict_is_strict_about_types(self):
        base = retrieval_request().to_dict()
        for field, bad in [
            ("query_text", 7),
            ("pool_size", "many"),
            ("pool_size", True),
            ("retriever", 3.5),
        ]:
            payload = dict(base)
            payload[field] = bad
            with pytest.raises(ApiError):
                DiversifyRequest.from_dict(payload)
        with pytest.raises(ApiError):
            DiversifyRequest.from_dict({**base, "surprise": 1})

    def test_instance_backed_retrieval_request_has_no_wire_form(self):
        from repro.workloads.synthetic import random_instance

        request = DiversifyRequest(
            instance=random_instance(n=10), k=3, query_text="anything"
        )
        assert request.wants_retrieval
        with pytest.raises(ApiError):
            request.to_dict()


class TestRequestKey:
    def test_plain_keys_keep_the_historical_shape(self):
        key = plain_request().key()
        assert "retrieve" not in key

    def test_retrieval_extends_the_key(self):
        plain = plain_request()
        retrieving = plain_request(query_text="solar")
        assert plain.key() != retrieving.key()
        assert "retrieve" in retrieving.key()
        # Different cut → different identity; same cut → same identity.
        assert retrieving.key() != plain_request(query_text="wind").key()
        assert retrieving.key() == plain_request(query_text="solar").key()
        assert (
            plain_request(query_text="solar", pool_size=10).key()
            != retrieving.key()
        )
        # Explicit hybrid is the default spelled out: identical keys.
        assert (
            plain_request(query_text="solar", retriever="hybrid").key()
            == retrieving.key()
        )


class TestResponseWire:
    def test_retrieval_block_roundtrips(self):
        block = {
            "retriever": "hybrid",
            "pool": 42,
            "pool_size": 100,
            "corpus_size": 400,
            "stages": ["bm25", "ann", "fusion"],
            "elapsed_ms": 1.25,
        }
        response = DiversifyResponse(
            feasible=True,
            value=3.5,
            indices=(0, 1),
            rows=None,
            algorithm="greedy_max_sum",
            backend="python",
            retrieval=block,
        )
        payload = response.to_dict()
        assert payload["retrieval"] == block
        rebuilt = DiversifyResponse.from_dict(payload)
        assert rebuilt.retrieval == block

    def test_plain_response_keeps_a_null_retrieval_slot(self):
        response = DiversifyResponse(
            feasible=True,
            value=1.0,
            indices=(0,),
            rows=None,
            algorithm="greedy_max_sum",
            backend="python",
        )
        payload = response.to_dict()
        assert payload["retrieval"] is None
        assert DiversifyResponse.from_dict(payload).retrieval is None
