"""Provider-built kernels are indistinguishable from scalar-built ones.

The tentpole guarantee of the batch-native refactor: routing kernel
construction through a workload's vectorized provider — at any tile
size, on either backend, and across delta patches — produces arrays
that are element-wise equal (exact float equality) to the
scalar-adapter construction over the derived callables.
"""

import pytest

from repro.core.instance import DiversificationInstance
from repro.core.objectives import Objective, ObjectiveKind
from repro.engine import (
    DiversificationEngine,
    KernelError,
    ScoringKernel,
    compute_delta,
    numpy_available,
)
from repro.workloads import courses, gifts, teams, websearch
from repro.workloads.streaming import StreamingWebSearch

BACKENDS = [False] + ([True] if numpy_available() else [])


def provider_instances():
    """(name, provider instance, scalar twin) pairs per workload.

    The scalar twin shares the provider's derived callables but drops
    the provider itself, so its kernel takes the scalar-adapter path.
    """
    cases = []

    db = websearch.generate(num_docs=26, num_intents=5, seed=3)
    provider = websearch.scoring_provider(db)
    query = websearch.documents_query()
    cases.append(("websearch", query, db, provider, 5))

    db = courses.generate(extra_courses=14, seed=1)
    cases.append(("courses", courses.catalog_query(), db, courses.scoring_provider(), 4))

    db = teams.generate(num_players=21, seed=6)
    cases.append(("teams", teams.roster_query(), db, teams.scoring_provider(), 4))

    db = gifts.generate(num_items=30, num_history=80, seed=2)
    cases.append(("gifts", gifts.peter_query_cq(low=5, high=95), db, gifts.scoring_provider(db), 4))

    out = []
    for name, query, db, provider, k in cases:
        with_provider = DiversificationInstance(
            query,
            db,
            k=k,
            objective=Objective.from_provider(ObjectiveKind.MAX_SUM, provider),
        )
        without_provider = DiversificationInstance(
            query,
            db,
            k=k,
            objective=Objective.max_sum(
                provider.relevance_function(), provider.distance_function()
            ),
        )
        out.append((name, with_provider, without_provider))
    return out


CASES = provider_instances()


def assert_kernels_equal(left: ScoringKernel, right: ScoringKernel):
    assert left.n == right.n
    assert list(left.answers) == list(right.answers)
    for i in range(left.n):
        assert left.relevance_of(i) == right.relevance_of(i)
        for j in range(left.n):
            assert left.distance_between(i, j) == right.distance_between(i, j)
    assert [float(v) for v in left.row_distance_sums()] == [
        float(v) for v in right.row_distance_sums()
    ]


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("case", CASES, ids=[name for name, _, _ in CASES])
def test_provider_kernel_equals_scalar_kernel(case, use_numpy):
    _, with_provider, without_provider = case
    fast = ScoringKernel(with_provider, use_numpy=use_numpy)
    slow = ScoringKernel(without_provider, use_numpy=use_numpy)
    assert_kernels_equal(fast, slow)


@pytest.mark.parametrize("case", CASES, ids=[name for name, _, _ in CASES])
def test_block_size_does_not_change_the_matrix(case):
    _, with_provider, _ = case
    baseline = ScoringKernel(with_provider, use_numpy=False)
    for use_numpy in BACKENDS:
        for block_size in (1, 3, 7, 4096):
            tiled = ScoringKernel(
                with_provider, use_numpy=use_numpy, block_size=block_size
            )
            assert_kernels_equal(tiled, baseline)


def test_block_size_validated():
    _, with_provider, _ = CASES[0]
    with pytest.raises(KernelError):
        ScoringKernel(with_provider, use_numpy=False, block_size=0)


@pytest.mark.skipif(not numpy_available(), reason="requires numpy")
@pytest.mark.parametrize("case", CASES, ids=[name for name, _, _ in CASES])
def test_backends_are_bit_identical(case):
    # The vectorized metrics are written op-for-op against their scalar
    # forms, so the two backends agree exactly — not just approximately.
    _, with_provider, _ = case
    assert_kernels_equal(
        ScoringKernel(with_provider, use_numpy=True),
        ScoringKernel(with_provider, use_numpy=False),
    )


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_apply_delta_via_provider_matches_rebuild(use_numpy):
    workload = StreamingWebSearch(num_docs=20, num_intents=5, seed=13)
    instance = workload.make_instance(k=5)
    kernel = ScoringKernel(instance, use_numpy=use_numpy)
    assert kernel.provider is workload.provider
    for _ in range(8):
        workload.step()
        instance.invalidate_cache()
        delta = compute_delta(kernel, instance.answers())
        kernel.apply_delta(delta.inserted, delta.deleted)
        assert_kernels_equal(kernel, ScoringKernel(instance, use_numpy=use_numpy))


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_apply_delta_provider_equals_scalar_patch(use_numpy):
    """Patching through batch calls and through the scalar adapter must
    land on identical arrays, event by event."""
    fast_workload = StreamingWebSearch(num_docs=16, num_intents=4, seed=21)
    slow_workload = StreamingWebSearch(num_docs=16, num_intents=4, seed=21)
    fast_instance = fast_workload.make_instance(k=4, use_provider=True)
    slow_instance = slow_workload.make_instance(k=4, use_provider=False)
    fast = ScoringKernel(fast_instance, use_numpy=use_numpy)
    slow = ScoringKernel(slow_instance, use_numpy=use_numpy)
    for _ in range(6):
        fast_workload.step()
        slow_workload.step()
        for instance, kernel in (
            (fast_instance, fast),
            (slow_instance, slow),
        ):
            instance.invalidate_cache()
            delta = compute_delta(kernel, instance.answers())
            kernel.apply_delta(delta.inserted, delta.deleted)
        assert_kernels_equal(fast, slow)


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_engine_serving_loop_on_provider_instances(use_numpy):
    """End to end: the engine patches provider-backed kernels in place
    and keeps returning the same selections a fresh engine would."""
    workload = StreamingWebSearch(num_docs=18, num_intents=4, seed=8)
    instance = workload.make_instance(k=4)
    engine = DiversificationEngine(algorithm="mmr", use_numpy=use_numpy)
    assert engine.run(instance) is not None
    for _ in range(5):
        workload.step()
        instance.invalidate_cache()
        served = engine.run(instance)
        fresh = DiversificationEngine(algorithm="mmr", use_numpy=use_numpy).run(instance)
        assert served.rows == fresh.rows
        assert served.value == fresh.value
    assert engine.stats.patches > 0


@pytest.mark.parametrize("case", CASES, ids=[name for name, _, _ in CASES])
def test_engine_results_identical_with_and_without_provider(case):
    _, with_provider, without_provider = case
    for algorithm in ("greedy_max_sum", "mmr", "greedy_marginal_max_sum"):
        fast = DiversificationEngine(algorithm=algorithm).run(with_provider)
        slow = DiversificationEngine(algorithm=algorithm).run(without_provider)
        assert fast.rows == slow.rows
        assert fast.value == slow.value
