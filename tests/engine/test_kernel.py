"""Unit tests for the ScoringKernel: construction, identity, scoring."""

import pytest

from repro.core.dispersion import from_instance
from repro.core.objectives import ObjectiveError, ObjectiveKind
from repro.engine import KernelError, ScoringKernel, numpy_available
from repro.workloads.synthetic import random_instance

BACKENDS = [False] + ([True] if numpy_available() else [])


def backend_kernels(instance):
    return [ScoringKernel(instance, use_numpy=flag) for flag in BACKENDS]


class TestConstruction:
    def test_backend_names(self):
        instance = random_instance(n=6, k=2)
        assert ScoringKernel(instance, use_numpy=False).backend == "python"
        if numpy_available():
            assert ScoringKernel(instance, use_numpy=True).backend == "numpy"
            assert ScoringKernel(instance).backend == "numpy"

    def test_use_numpy_true_without_numpy_raises(self, monkeypatch):
        import repro.engine.kernel as kernel_mod

        monkeypatch.setattr(kernel_mod, "_np", None)
        instance = random_instance(n=4, k=2)
        with pytest.raises(KernelError):
            ScoringKernel(instance, use_numpy=True)
        # auto falls back silently
        assert ScoringKernel(instance).backend == "python"

    def test_snapshot_of_answers(self):
        instance = random_instance(n=8, k=3)
        kernel = ScoringKernel(instance, use_numpy=False)
        assert kernel.n == 8
        assert list(kernel.answers) == instance.answers()


class TestScalars:
    def test_relevance_and_distance_agree_with_direct_calls(self):
        instance = random_instance(n=10, k=3, seed=4)
        objective = instance.objective
        answers = instance.answers()
        for kernel in backend_kernels(instance):
            for i, row in enumerate(answers):
                assert kernel.relevance_of(i) == objective.relevance(
                    row, instance.query
                )
                for j, other in enumerate(answers):
                    assert kernel.distance_between(i, j) == pytest.approx(
                        objective.distance(row, other)
                    )

    def test_matrix_symmetric_zero_diagonal(self):
        instance = random_instance(n=9, k=3, seed=1)
        for kernel in backend_kernels(instance):
            for i in range(kernel.n):
                assert kernel.distance_between(i, i) == 0.0
                for j in range(kernel.n):
                    assert kernel.distance_between(i, j) == kernel.distance_between(
                        j, i
                    )

    def test_index_of(self):
        instance = random_instance(n=7, k=2)
        kernel = ScoringKernel(instance, use_numpy=False)
        for i, row in enumerate(kernel.answers):
            assert kernel.index_of(row) == i
        other = random_instance(n=12, k=2, seed=99)
        with pytest.raises(KernelError):
            kernel.index_of(other.answers()[-1])


class TestMatching:
    def test_matches_same_materialization_and_lambda_variants(self):
        instance = random_instance(n=6, k=2, lam=0.5)
        kernel = ScoringKernel(instance, use_numpy=False)
        assert kernel.matches(instance)
        relaxed = instance.with_objective(instance.objective.with_lambda(0.9))
        assert kernel.matches(relaxed)
        assert kernel.matches(instance.with_k(4))

    def test_mismatch_raises(self):
        kernel = ScoringKernel(random_instance(n=6, k=2, seed=0), use_numpy=False)
        other = random_instance(n=6, k=2, seed=0)  # equal data, new objects
        assert not kernel.matches(other)
        with pytest.raises(KernelError):
            kernel.ensure_matches(other)


class TestValues:
    @pytest.mark.parametrize(
        "kind", [ObjectiveKind.MAX_SUM, ObjectiveKind.MAX_MIN, ObjectiveKind.MONO]
    )
    @pytest.mark.parametrize("lam", [0.0, 0.4, 1.0])
    def test_value_matches_instance_value(self, kind, lam):
        instance = random_instance(n=10, k=4, kind=kind, lam=lam, seed=6)
        answers = instance.answers()
        subsets = [[0, 3, 5, 8], [1, 2, 4], [9], []]
        for kernel in backend_kernels(instance):
            for indices in subsets:
                rows = [answers[i] for i in indices]
                assert kernel.value(indices, instance.objective) == pytest.approx(
                    instance.value(rows), rel=1e-12, abs=1e-12
                )

    def test_item_scores_match_instance(self):
        instance = random_instance(n=9, k=3, kind=ObjectiveKind.MONO, lam=0.6, seed=2)
        direct = [instance.item_score(t) for t in instance.answers()]
        for kernel in backend_kernels(instance):
            scores = kernel.item_scores(instance.objective)
            assert scores == pytest.approx(direct, rel=1e-12)

    def test_item_scores_reject_non_modular(self):
        instance = random_instance(n=6, k=2, kind=ObjectiveKind.MAX_SUM, lam=0.5)
        kernel = ScoringKernel(instance, use_numpy=False)
        with pytest.raises(ObjectiveError):
            kernel.item_scores(instance.objective)


class TestDispersionRouting:
    def test_from_instance_kernel_equals_direct(self):
        instance = random_instance(n=8, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.7)
        direct = from_instance(instance)
        for kernel in backend_kernels(instance):
            routed = from_instance(instance, kernel=kernel)
            assert routed.select == direct.select
            assert routed.maximin == direct.maximin
            for row_a, row_b in zip(routed.weights, direct.weights):
                assert row_a == pytest.approx(row_b, rel=1e-12)

    def test_from_instance_maximin_routing(self):
        instance = random_instance(n=7, k=3, kind=ObjectiveKind.MAX_MIN, lam=1.0)
        direct = from_instance(instance)
        kernel = ScoringKernel(instance, use_numpy=False)
        routed = from_instance(instance, kernel=kernel)
        assert routed.weights == direct.weights
        assert routed.maximin
