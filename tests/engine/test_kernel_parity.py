"""Property tests: kernel-backed heuristics == direct-objective paths.

The engine's core guarantee (ISSUE 1): routing greedy / incremental /
MMR through a precomputed :class:`ScoringKernel` must return the same
objective values (and, absent float ties, the same tuples) as the
direct path, on randomized workload instances, for both kernel
backends.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.greedy import (
    greedy_marginal_max_sum,
    greedy_max_min,
    greedy_max_sum,
)
from repro.algorithms.incremental import early_termination_top_k, streaming_qrd
from repro.algorithms.local_search import local_search
from repro.algorithms.mmr import mmr_select
from repro.core.objectives import ObjectiveKind
from repro.engine import ScoringKernel, numpy_available
from repro.workloads.synthetic import random_instance

BACKENDS = [False] + ([True] if numpy_available() else [])

LAMBDAS = [0.0, 0.25, 0.5, 0.75, 1.0]


def assert_same_result(direct, kernel_result):
    assert (direct is None) == (kernel_result is None)
    if direct is None:
        return
    assert kernel_result[0] == pytest.approx(direct[0], rel=1e-9, abs=1e-9)
    assert kernel_result[1] == direct[1]


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("lam", LAMBDAS)
@pytest.mark.parametrize("seed", range(4))
def test_greedy_max_sum_parity(seed, lam, use_numpy):
    instance = random_instance(
        n=14, k=5, kind=ObjectiveKind.MAX_SUM, lam=lam, seed=seed
    )
    kernel = ScoringKernel(instance, use_numpy=use_numpy)
    assert_same_result(greedy_max_sum(instance), greedy_max_sum(instance, kernel))


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("lam", LAMBDAS)
@pytest.mark.parametrize("seed", range(4))
def test_greedy_marginal_parity(seed, lam, use_numpy):
    instance = random_instance(
        n=14, k=5, kind=ObjectiveKind.MAX_SUM, lam=lam, seed=seed
    )
    kernel = ScoringKernel(instance, use_numpy=use_numpy)
    assert_same_result(
        greedy_marginal_max_sum(instance),
        greedy_marginal_max_sum(instance, kernel),
    )


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("lam", LAMBDAS)
@pytest.mark.parametrize("seed", range(4))
def test_greedy_max_min_parity(seed, lam, use_numpy):
    instance = random_instance(
        n=13, k=4, kind=ObjectiveKind.MAX_MIN, lam=lam, seed=seed
    )
    kernel = ScoringKernel(instance, use_numpy=use_numpy)
    assert_same_result(greedy_max_min(instance), greedy_max_min(instance, kernel))


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("lam", LAMBDAS)
@pytest.mark.parametrize("seed", range(4))
def test_mmr_parity(seed, lam, use_numpy):
    instance = random_instance(
        n=15, k=5, kind=ObjectiveKind.MAX_SUM, lam=lam, seed=seed
    )
    kernel = ScoringKernel(instance, use_numpy=use_numpy)
    assert_same_result(mmr_select(instance), mmr_select(instance, kernel=kernel))


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("lam", [0.0, 0.5, 1.0])
@pytest.mark.parametrize("seed", range(4))
def test_incremental_parity(seed, lam, use_numpy):
    instance = random_instance(n=16, k=4, kind=ObjectiveKind.MONO, lam=lam, seed=seed)
    kernel = ScoringKernel(instance, use_numpy=use_numpy)
    direct = early_termination_top_k(instance)
    routed = early_termination_top_k(instance, kernel=kernel)
    assert routed.selected == direct.selected
    assert routed.consumed == direct.consumed
    assert routed.value == pytest.approx(direct.value, rel=1e-9)
    for bound in (direct.value * 0.5, direct.value, direct.value * 1.5 + 1.0):
        assert streaming_qrd(instance, bound) == streaming_qrd(
            instance, bound, kernel=kernel
        )


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_local_search_parity(use_numpy):
    # Local search compares trial values internally; identical arithmetic
    # means identical swap sequences on the python backend, and the
    # numpy backend must land on an equally-scored local optimum.
    instance = random_instance(n=10, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.6, seed=3)
    kernel = ScoringKernel(instance, use_numpy=use_numpy)
    direct = local_search(instance)
    routed = local_search(instance, kernel=kernel)
    assert routed[0] == pytest.approx(direct[0], rel=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=20),
    k=st.integers(min_value=1, max_value=5),
    lam=st.sampled_from(LAMBDAS),
    seed=st.integers(min_value=0, max_value=10_000),
    kind=st.sampled_from([ObjectiveKind.MAX_SUM, ObjectiveKind.MAX_MIN]),
)
def test_hypothesis_parity(n, k, lam, seed, kind):
    if k > n:
        k = n
    instance = random_instance(n=n, k=k, kind=kind, lam=lam, seed=seed)
    for use_numpy in BACKENDS:
        kernel = ScoringKernel(instance, use_numpy=use_numpy)
        if kind is ObjectiveKind.MAX_SUM:
            assert_same_result(
                greedy_max_sum(instance), greedy_max_sum(instance, kernel)
            )
            assert_same_result(
                mmr_select(instance), mmr_select(instance, kernel=kernel)
            )
        else:
            assert_same_result(
                greedy_max_min(instance), greedy_max_min(instance, kernel)
            )


@pytest.mark.skipif(not numpy_available(), reason="requires numpy")
def test_backends_agree_with_each_other():
    for seed in range(3):
        instance = random_instance(
            n=12, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=seed
        )
        python_kernel = ScoringKernel(instance, use_numpy=False)
        numpy_kernel = ScoringKernel(instance, use_numpy=True)
        py = greedy_max_sum(instance, python_kernel)
        np_ = greedy_max_sum(instance, numpy_kernel)
        assert py[1] == np_[1]
        assert py[0] == pytest.approx(np_[0], rel=1e-12)
