"""Storage parity suite: the matrix layout must be invisible.

The kernel-storage refactor (ISSUE 5) swaps the contiguous O(n²)
distance matrix for a pluggable backend (:mod:`repro.engine.storage`)
beneath the accessor methods every selector consumes.  These tests pin
the contract:

* dense float64 and tiled float64 are **element-wise equal** — every
  entry, every row copy, every row sum, on both kernel backends, through
  ``apply_delta`` patches, under duplicated rows, and at adversarial
  ``block_size`` values (1, n−1, > n);
* tiled float32 stays inside the documented relative-error envelope and
  still reproduces the pinned selections of every registered algorithm;
* tiled storage is actually lazy (tiles appear on first touch, never at
  construction) and the parallel build produces the identical grid.
"""

import json
from pathlib import Path

import pytest

from repro.algorithms.incremental import early_termination_top_k
from repro.core.objectives import ObjectiveKind
from repro.engine import (
    ALGORITHMS,
    DiversificationEngine,
    EngineError,
    KernelError,
    ScoringKernel,
    TiledStorage,
    numpy_available,
)
from repro.workloads.synthetic import random_instance

BACKENDS = [False] + ([True] if numpy_available() else [])

#: One binary32 rounding per stored entry (≤ 2⁻²⁴ relative), with slack.
F32_REL_ENVELOPE = 1e-6

PINS = json.loads(
    (Path(__file__).parent.parent / "data" / "unified_path_pins.json").read_text()
)

KINDS = {
    "max_sum": ObjectiveKind.MAX_SUM,
    "max_min": ObjectiveKind.MAX_MIN,
    "mono": ObjectiveKind.MONO,
}


def tiled_kernel(instance, use_numpy, block_size=5, dtype=None, workers=None):
    return ScoringKernel(
        instance,
        use_numpy=use_numpy,
        storage="tiled",
        block_size=block_size,
        dtype=dtype,
        workers=workers,
    )


def assert_matrices_equal(dense, tiled):
    assert tiled.n == dense.n
    assert tiled.distance_rows() == dense.distance_rows()
    assert tiled.row_distance_sums() == dense.row_distance_sums()
    for i in range(dense.n):
        assert list(tiled.copy_distance_row(i)) == list(dense.copy_distance_row(i))
        for j in range(dense.n):
            assert tiled.distance_between(i, j) == dense.distance_between(i, j)


class TestElementWiseParity:
    @pytest.mark.parametrize("use_numpy", BACKENDS)
    @pytest.mark.parametrize("block_size", [1, 5, 16, 17, 1000])
    def test_dense_vs_tiled_equal(self, use_numpy, block_size):
        # n=17 makes block_size=16 the n−1 case and 1000 the > n case.
        instance = random_instance(
            n=17, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=2
        )
        dense = ScoringKernel(instance, use_numpy=use_numpy)
        tiled = tiled_kernel(instance, use_numpy, block_size=block_size)
        assert_matrices_equal(dense, tiled)

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_duplicate_rows(self, use_numpy):
        instance = random_instance(
            n=10, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=4
        )
        answers = instance.answers()
        instance._result_cache = answers + [answers[i] for i in (0, 3, 3)]
        dense = ScoringKernel(instance, use_numpy=use_numpy)
        tiled = tiled_kernel(instance, use_numpy, block_size=4)
        assert_matrices_equal(dense, tiled)

    @pytest.mark.skipif(not numpy_available(), reason="requires numpy")
    def test_backends_agree_on_tiled(self):
        instance = random_instance(
            n=13, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=7
        )
        py = tiled_kernel(instance, use_numpy=False, block_size=4)
        np_ = tiled_kernel(instance, use_numpy=True, block_size=4)
        assert py.distance_rows() == np_.distance_rows()
        assert py.row_distance_sums() == np_.row_distance_sums()


class TestLaziness:
    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_tiles_build_on_touch(self, use_numpy):
        instance = random_instance(
            n=20, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=1
        )
        kernel = tiled_kernel(instance, use_numpy, block_size=5)
        storage = kernel._storage
        assert isinstance(storage, TiledStorage)
        assert storage.tiles_built == 0
        assert not kernel.distances_fully_built
        kernel.distance_between(0, 19)  # one off-diagonal tile
        assert storage.tiles_built == 1
        kernel.copy_distance_row(0)  # the rest of tile-row 0
        assert storage.tiles_built == storage._nb
        kernel.materialize_all()
        assert storage.is_fully_built
        assert kernel.distances_fully_built

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_mirror_tiles_are_shared(self, use_numpy):
        """Reading (i, j) and (j, i) must build one scored tile, not two."""
        instance = random_instance(
            n=12, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=3
        )
        kernel = tiled_kernel(instance, use_numpy, block_size=4)
        storage = kernel._storage
        a = kernel.distance_between(1, 10)
        b = kernel.distance_between(10, 1)
        assert a == b
        assert storage.tiles_built == 1

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_parallel_build_identical(self, use_numpy):
        instance = random_instance(
            n=19, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=6
        )
        serial = tiled_kernel(instance, use_numpy, block_size=4)
        parallel = tiled_kernel(instance, use_numpy, block_size=4, workers=3)
        serial.materialize_all()
        parallel.materialize_all()
        assert parallel._storage.is_fully_built
        assert serial.distance_rows() == parallel.distance_rows()


class TestDeltaParity:
    def mutate(self, kernel, instance):
        rows = list(instance.answers())
        kernel.apply_delta(inserted=[rows[3], rows[5]], deleted=[rows[1], rows[8]])

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    @pytest.mark.parametrize("block_size", [1, 4, 30])
    def test_patched_tiled_equals_patched_dense(self, use_numpy, block_size):
        instance = random_instance(
            n=14, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=5
        )
        dense = ScoringKernel(instance, use_numpy=use_numpy)
        tiled = tiled_kernel(instance, use_numpy, block_size=block_size)
        tiled.materialize_all()
        self.mutate(dense, instance)
        self.mutate(tiled, instance)
        assert tiled.answers == dense.answers
        assert_matrices_equal(dense, tiled)

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_partially_built_tiled_survives_delta(self, use_numpy):
        """A lazily part-built grid is re-derived against the patched
        snapshot — later reads must match a patched dense kernel."""
        instance = random_instance(
            n=14, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=5
        )
        dense = ScoringKernel(instance, use_numpy=use_numpy)
        tiled = tiled_kernel(instance, use_numpy, block_size=4)
        tiled.distance_between(0, 13)  # partial touch only
        self.mutate(dense, instance)
        self.mutate(tiled, instance)
        assert tiled.answers == dense.answers
        assert_matrices_equal(dense, tiled)

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_patched_f32_equals_fresh_f32(self, use_numpy):
        """The float32 patch must re-narrow exactly as a fresh build."""
        instance = random_instance(
            n=12, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=8
        )
        patched = tiled_kernel(instance, use_numpy, block_size=4, dtype="float32")
        patched.materialize_all()
        self.mutate(patched, instance)
        # A fresh kernel over the patched answer set (injected into the
        # materialization cache) is the rebuild the patch must match.
        instance._result_cache = list(patched.answers)
        fresh = tiled_kernel(instance, use_numpy, block_size=4, dtype="float32")
        assert fresh.distance_rows() == patched.distance_rows()


class TestFloat32:
    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_envelope(self, use_numpy):
        instance = random_instance(
            n=15, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=0
        )
        dense = ScoringKernel(instance, use_numpy=use_numpy)
        narrow = tiled_kernel(instance, use_numpy, block_size=4, dtype="float32")
        saw_nonzero = False
        for i in range(dense.n):
            for j in range(dense.n):
                base = dense.distance_between(i, j)
                value = narrow.distance_between(i, j)
                if base:
                    saw_nonzero = True
                    assert abs(value - base) / abs(base) <= F32_REL_ENVELOPE
                else:
                    assert value == 0.0
        assert saw_nonzero

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_backends_store_identical_float32(self, use_numpy):
        """The pure-Python binary32 round-trip must equal NumPy's cast."""
        if not numpy_available():
            pytest.skip("requires numpy for the cross-check")
        instance = random_instance(
            n=11, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=9
        )
        py = tiled_kernel(instance, use_numpy=False, block_size=4, dtype="float32")
        np_ = tiled_kernel(instance, use_numpy=True, block_size=4, dtype="float32")
        assert py.distance_rows() == np_.distance_rows()


def pin_instance(pin):
    return random_instance(
        n=pin["n"],
        k=pin["k"],
        kind=KINDS[pin["kind"]],
        lam=pin["lam"],
        seed=pin["seed"],
    )


def pin_id(pin):
    return f"{pin['algorithm']}-{pin['kind']}-lam{pin['lam']}-s{pin['seed']}"


def run_pin(pin, kernel, instance):
    if pin["algorithm"] == "early_termination_top_k":
        result = early_termination_top_k(instance, kernel=kernel)
        return None if result is None else (result.value, result.selected)
    return ALGORITHMS[pin["algorithm"]](instance, kernel)


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("pin", PINS, ids=pin_id)
def test_tiled_kernel_matches_pins(pin, use_numpy):
    """Acceptance: all selectors produce identical selections on dense
    vs tiled storage for the full pinned parity suite (float64 exact)."""
    instance = pin_instance(pin)
    kernel = tiled_kernel(instance, use_numpy, block_size=5)
    result = run_pin(pin, kernel, instance)
    assert result is not None
    assert result[0] == pytest.approx(pin["value"], rel=1e-9, abs=1e-9)
    assert [list(row.values) for row in result[1]] == pin["rows"]


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("pin", PINS, ids=pin_id)
def test_tiled_float32_matches_pinned_selections(pin, use_numpy):
    """The float32 carve-out: values may drift inside the envelope, but
    the selected index sets stay identical on the pinned suite."""
    instance = pin_instance(pin)
    kernel = tiled_kernel(instance, use_numpy, block_size=5, dtype="float32")
    result = run_pin(pin, kernel, instance)
    assert result is not None
    assert result[0] == pytest.approx(pin["value"], rel=1e-5, abs=1e-5)
    assert [list(row.values) for row in result[1]] == pin["rows"]


class TestValidation:
    def test_dense_rejects_float32(self):
        instance = random_instance(n=5, k=2)
        with pytest.raises(KernelError):
            ScoringKernel(instance, use_numpy=False, dtype="float32")

    def test_unknown_storage_and_dtype(self):
        instance = random_instance(n=5, k=2)
        with pytest.raises(KernelError):
            ScoringKernel(instance, use_numpy=False, storage="sparse")
        with pytest.raises(KernelError):
            ScoringKernel(
                instance, use_numpy=False, storage="tiled", dtype="float16"
            )

    def test_bad_workers(self):
        instance = random_instance(n=5, k=2)
        with pytest.raises(KernelError):
            ScoringKernel(instance, use_numpy=False, storage="tiled", workers=0)

    def test_dense_rejects_parallel_workers(self):
        """workers>1 on dense would be silently serial — reject it like
        the dtype knob instead (workers=1 is the harmless default)."""
        instance = random_instance(n=5, k=2)
        with pytest.raises(KernelError):
            ScoringKernel(instance, use_numpy=False, workers=4)
        kernel = ScoringKernel(instance, use_numpy=False, workers=1)
        assert kernel.storage_kind == "dense"

    def test_engine_knob_validation(self):
        with pytest.raises(EngineError):
            DiversificationEngine(storage="sparse")
        with pytest.raises(EngineError):
            DiversificationEngine(dtype="float16")
        with pytest.raises(EngineError):
            DiversificationEngine(dtype="float32")  # dense default
        with pytest.raises(EngineError):
            DiversificationEngine(storage="tiled", workers=0)
        with pytest.raises(EngineError):
            DiversificationEngine(workers=4)  # dense default, silent no-op


class TestEngineThreading:
    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_engine_builds_tiled_kernels(self, use_numpy):
        instance = random_instance(
            n=12, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=2
        )
        dense_engine = DiversificationEngine(use_numpy=use_numpy)
        tiled_engine = DiversificationEngine(
            use_numpy=use_numpy,
            storage="tiled",
            dtype="float32",
            workers=2,
            block_size=4,
        )
        dense_result = dense_engine.run(instance)
        tiled_result = tiled_engine.run(instance)
        kernel = tiled_engine.kernel_for(instance)
        assert kernel.storage_kind == "tiled"
        assert kernel.dtype == "float32"
        assert kernel.workers == 2
        assert tiled_result.rows == dense_result.rows
        assert tiled_result.value == pytest.approx(dense_result.value, rel=1e-5)
