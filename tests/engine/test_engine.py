"""Tests for the DiversificationEngine: batching, caching, dispatch."""

import pytest

from repro.algorithms.exact import best_modular, branch_and_bound_max_sum
from repro.core.objectives import ObjectiveKind
from repro.engine import (
    ALGORITHMS,
    DiversificationEngine,
    EngineError,
    modular_top_k,
    ScoringKernel,
    auto_algorithm,
)
from repro.workloads import teams
from repro.workloads.synthetic import random_instance
from repro.core.instance import DiversificationInstance
from repro.core.objectives import Objective


def teams_instance(k=4, lam=0.5, num_players=12):
    db = teams.generate(num_players=num_players)
    objective = Objective.max_sum(
        teams.skill_relevance(), teams.position_distance(), lam=lam
    )
    return DiversificationInstance(teams.roster_query(), db, k=k, objective=objective)


class TestConfiguration:
    def test_unknown_algorithm_rejected_up_front(self):
        with pytest.raises(EngineError):
            DiversificationEngine(algorithm="definitely-not-real")

    def test_unknown_algorithm_rejected_at_run(self):
        engine = DiversificationEngine()
        with pytest.raises(EngineError):
            engine.run(random_instance(n=5, k=2), algorithm="nope")

    def test_bad_cache_size(self):
        with pytest.raises(EngineError):
            DiversificationEngine(cache_size=0)


class TestRun:
    def test_run_matches_direct_algorithm(self):
        instance = random_instance(n=12, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.6)
        engine = DiversificationEngine(algorithm="greedy_max_sum")
        result = engine.run(instance)
        from repro.algorithms.greedy import greedy_max_sum

        direct = greedy_max_sum(instance)
        assert result.value == pytest.approx(direct[0], rel=1e-9)
        assert result.rows == direct[1]
        assert result.algorithm == "greedy_max_sum"
        assert not result.kernel_reused  # first run builds the kernel

    def test_run_returns_none_when_k_exceeds_answers(self):
        instance = random_instance(n=3, k=5)
        engine = DiversificationEngine(algorithm="greedy_max_sum")
        assert engine.run(instance) is None

    def test_every_registered_algorithm_runs(self):
        for name in ALGORITHMS:
            if name == "greedy_max_min":
                instance = random_instance(
                    n=10, k=3, kind=ObjectiveKind.MAX_MIN, lam=0.5
                )
            elif name == "modular_top_k":
                instance = random_instance(
                    n=10, k=3, kind=ObjectiveKind.MONO, lam=0.5
                )
            else:
                instance = random_instance(
                    n=10, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.5
                )
            engine = DiversificationEngine(algorithm=name)
            result = engine.run(instance)
            assert result is not None
            assert result.algorithm == name
            assert len(result.rows) == 3


class TestAutoDispatch:
    def test_auto_by_objective(self):
        assert (
            auto_algorithm(random_instance(n=6, k=2, kind=ObjectiveKind.MAX_SUM))
            == "greedy_max_sum"
        )
        assert (
            auto_algorithm(
                random_instance(n=6, k=2, kind=ObjectiveKind.MAX_MIN, lam=0.5)
            )
            == "greedy_max_min"
        )
        assert (
            auto_algorithm(random_instance(n=6, k=2, kind=ObjectiveKind.MONO))
            == "modular_top_k"
        )
        # λ = 0 F_MS is modular → the PTIME exact path
        assert (
            auto_algorithm(
                random_instance(n=6, k=2, kind=ObjectiveKind.MAX_SUM, lam=0.0)
            )
            == "modular_top_k"
        )

    def test_auto_with_constraints_uses_local_search(self):
        instance = teams_instance(k=4)
        constrained = instance.with_constraints(teams.quota_constraints())
        assert auto_algorithm(constrained) == "local_search"
        engine = DiversificationEngine(algorithm="auto")
        result = engine.run(constrained)
        assert result.algorithm == "local_search"
        assert constrained.constraints.satisfied_by(list(result.rows))

    def test_auto_modular_is_exact(self):
        instance = random_instance(n=12, k=4, kind=ObjectiveKind.MONO, lam=0.7)
        engine = DiversificationEngine(algorithm="auto")
        result = engine.run(instance)
        assert result.algorithm == "modular_top_k"
        assert result.value == pytest.approx(best_modular(instance)[0], rel=1e-9)

    def test_auto_greedy_respects_approximation_bound(self):
        instance = random_instance(n=12, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.7)
        engine = DiversificationEngine()
        result = engine.run(instance)
        optimum = branch_and_bound_max_sum(instance)[0]
        assert result.value >= 0.5 * optimum - 1e-9


class TestModularTopK:
    def test_direct_fallback_equals_best_modular(self):
        instance = random_instance(n=10, k=3, kind=ObjectiveKind.MONO, lam=0.4)
        direct = modular_top_k(instance)
        kernel = ScoringKernel(instance, use_numpy=False)
        routed = modular_top_k(instance, kernel)
        reference = best_modular(instance)
        assert direct[1] == reference[1]
        assert routed[1] == reference[1]
        assert routed[0] == pytest.approx(reference[0], rel=1e-9)

    def test_rejects_non_modular(self):
        instance = random_instance(n=8, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.5)
        kernel = ScoringKernel(instance, use_numpy=False)
        with pytest.raises(ValueError):
            modular_top_k(instance, kernel)


class TestCaching:
    def test_sweep_reuses_one_kernel(self):
        engine = DiversificationEngine(algorithm="mmr")
        instance = teams_instance(k=4)
        grid = engine.sweep(instance, ks=[2, 4], lams=[0.2, 0.5, 0.9])
        assert len(grid) == 6
        assert engine.stats.misses == 1
        assert engine.stats.hits == 5
        assert engine.cached_kernels == 1
        reused = [result.kernel_reused for _, _, result in grid]
        assert reused == [False, True, True, True, True, True]

    def test_distinct_materializations_get_distinct_kernels(self):
        engine = DiversificationEngine(algorithm="greedy_max_sum")
        a = teams_instance(k=3)
        b = random_instance(n=10, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.5)
        engine.run(a)
        engine.run(b)
        engine.run(a)  # still cached
        assert engine.stats.misses == 2
        assert engine.stats.hits == 1
        assert engine.cached_kernels == 2

    def test_lru_eviction(self):
        engine = DiversificationEngine(algorithm="greedy_max_sum", cache_size=2)
        instances = [
            random_instance(n=8, k=2, kind=ObjectiveKind.MAX_SUM, seed=s)
            for s in range(3)
        ]
        for instance in instances:
            engine.run(instance)
        assert engine.cached_kernels == 2
        assert engine.stats.evictions == 1
        # Oldest (seed 0) was evicted: running it again is a miss.
        engine.run(instances[0])
        assert engine.stats.misses == 4

    def test_run_batch_over_shared_data(self):
        engine = DiversificationEngine(algorithm="mmr")
        base = teams_instance(k=3)
        batch = [base, base.with_k(5), base.with_objective(
            base.objective.with_lambda(0.8)
        )]
        results = engine.run_batch(batch)
        assert all(r is not None for r in results)
        assert engine.stats.misses == 1 and engine.stats.hits == 2
        assert engine.stats.hit_rate == pytest.approx(2 / 3)

    def test_clear_cache(self):
        engine = DiversificationEngine(algorithm="mmr")
        engine.run(teams_instance())
        assert engine.cached_kernels == 1
        engine.clear_cache()
        assert engine.cached_kernels == 0

    def test_in_place_db_mutation_patches_kernel(self):
        from repro.algorithms.mmr import mmr_select

        instance = teams_instance(k=3, num_players=9)
        engine = DiversificationEngine(algorithm="mmr")
        engine.run(instance)
        # Mutate the database in place: a new star player appears.
        relation = instance.db.relation(teams.PLAYERS.name)
        relation.add(("p99", "Star Player", "guard", 99, 20))
        instance.invalidate_cache()
        result = engine.run(instance)
        # The stale kernel (without p99) must not be served as-is: the
        # single-row delta is patched in place, not rebuilt.
        assert engine.stats.misses == 1
        assert engine.stats.patches == 1
        assert result.kernel_reused
        direct = mmr_select(instance)
        assert result.rows == direct[1]
        assert result.value == pytest.approx(direct[0], rel=1e-9)
        assert any(row["id"] == "p99" for row in result.rows)

    def test_large_mutation_rebuilds_instead_of_patching(self):
        instance = teams_instance(k=3, num_players=8)
        engine = DiversificationEngine(algorithm="mmr")
        engine.run(instance)
        # Replace most of the roster: the delta exceeds the patch
        # threshold, so the stale kernel is displaced and rebuilt.
        relation = instance.db.relation(teams.PLAYERS.name)
        for row in list(relation.rows)[:6]:
            relation.discard(row)
        for i in range(6):
            relation.add((f"n{i:02d}", f"New Player {i}", "center", 50 + i, 10))
        instance.invalidate_cache()
        result = engine.run(instance)
        assert engine.stats.misses == 2
        assert engine.stats.stale_rebuilds == 1
        assert engine.stats.patches == 0
        assert not result.kernel_reused

    def test_patch_threshold_zero_disables_patching(self):
        instance = teams_instance(k=3, num_players=9)
        engine = DiversificationEngine(algorithm="mmr", patch_threshold=0.0)
        engine.run(instance)
        instance.db.relation(teams.PLAYERS.name).add(
            ("p98", "Another Player", "guard", 42, 15)
        )
        instance.invalidate_cache()
        engine.run(instance)
        assert engine.stats.patches == 0
        assert engine.stats.misses == 2
        assert engine.stats.stale_rebuilds == 1

    def test_negative_patch_threshold_rejected(self):
        with pytest.raises(EngineError):
            DiversificationEngine(patch_threshold=-0.1)
