"""Delta maintenance: compute_delta, apply_delta parity, engine patching.

The tentpole guarantee (ISSUE 2): after any insert/delete sequence, a
patched kernel must be element-wise equal — answers, relevance vector,
distance matrix, row sums, index — to a kernel freshly built from the
updated database, on both backends; and the engine must route stale
cached kernels through the patch path with honest accounting.
"""

import pytest

from repro.core.instance import DiversificationInstance
from repro.core.objectives import Objective
from repro.engine import (
    DiversificationEngine,
    KernelDelta,
    KernelError,
    ScoringKernel,
    compute_delta,
    delta_for_instance,
    numpy_available,
)
from repro.workloads.streaming import StreamingWebSearch
from repro.workloads.synthetic import random_instance

BACKENDS = [False] + ([True] if numpy_available() else [])


def assert_kernels_equal(patched: ScoringKernel, fresh: ScoringKernel):
    assert patched.n == fresh.n
    assert patched.answers == fresh.answers
    for i in range(fresh.n):
        assert patched.relevance_of(i) == fresh.relevance_of(i)
        for j in range(fresh.n):
            assert patched.distance_between(i, j) == fresh.distance_between(i, j)
    assert [float(v) for v in patched.row_distance_sums()] == [
        float(v) for v in fresh.row_distance_sums()
    ]
    assert patched._index == fresh._index


class TestComputeDelta:
    def test_empty_delta_on_fresh_kernel(self):
        instance = random_instance(n=8, k=3)
        kernel = ScoringKernel(instance, use_numpy=False)
        assert kernel.is_fresh_for(instance)
        delta = delta_for_instance(kernel, instance)
        assert delta.is_empty
        assert delta.size == 0
        assert delta.old_size == delta.new_size == 8

    def test_stale_kernel_freshened_by_patch(self):
        workload = StreamingWebSearch(num_docs=10, seed=19)
        instance = workload.make_instance(k=3)
        kernel = ScoringKernel(instance, use_numpy=False)
        workload.step()
        instance.invalidate_cache()
        assert not kernel.is_fresh_for(instance)
        delta = delta_for_instance(kernel, instance)
        kernel.apply_delta(delta.inserted, delta.deleted)
        assert kernel.is_fresh_for(instance)

    def test_insert_and_delete_detected(self):
        workload = StreamingWebSearch(num_docs=12, seed=3)
        instance = workload.make_instance(k=4)
        kernel = ScoringKernel(instance, use_numpy=False)
        inserted_event = workload.step()  # may insert or delete
        instance.invalidate_cache()
        delta = compute_delta(kernel, instance.answers())
        assert delta.size == 1
        if inserted_event.op == "insert":
            assert len(delta.inserted) == 1 and not delta.deleted
        else:
            assert len(delta.deleted) == 1 and not delta.inserted
        assert delta.new_size == delta.old_size + (
            1 if inserted_event.op == "insert" else -1
        )

    def test_multiset_semantics(self):
        instance = random_instance(n=6, k=2)
        kernel = ScoringKernel(instance, use_numpy=False)
        answers = list(kernel.answers)
        # Duplicate one row three times, drop another entirely.
        new_rows = answers[:1] * 3 + answers[2:]
        delta = compute_delta(kernel, new_rows)
        assert delta.inserted == (answers[0], answers[0])
        assert delta.deleted == (answers[1],)

    def test_touches(self):
        instance = random_instance(n=6, k=2)
        kernel = ScoringKernel(instance, use_numpy=False)
        answers = list(kernel.answers)
        delta = KernelDelta(
            inserted=(), deleted=(answers[2],), old_size=6, new_size=5
        )
        assert delta.touches([answers[2], answers[3]])
        assert not delta.touches([answers[0], answers[1]])


class TestApplyDelta:
    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_randomized_trace_parity(self, use_numpy):
        workload = StreamingWebSearch(num_docs=25, num_intents=5, seed=11)
        instance = workload.make_instance(k=5)
        kernel = ScoringKernel(instance, use_numpy=use_numpy)
        for _ in range(30):
            workload.step()
            instance.invalidate_cache()
            delta = delta_for_instance(kernel, instance)
            kernel.apply_delta(delta.inserted, delta.deleted)
            assert_kernels_equal(
                kernel, ScoringKernel(instance, use_numpy=use_numpy)
            )

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_batched_delta_parity(self, use_numpy):
        workload = StreamingWebSearch(num_docs=20, num_intents=4, seed=23)
        instance = workload.make_instance(k=4)
        kernel = ScoringKernel(instance, use_numpy=use_numpy)
        for _ in range(5):  # several updates folded into one delta
            for _ in range(6):
                workload.step()
            instance.invalidate_cache()
            delta = delta_for_instance(kernel, instance)
            kernel.apply_delta(delta.inserted, delta.deleted)
            assert_kernels_equal(
                kernel, ScoringKernel(instance, use_numpy=use_numpy)
            )

    def test_empty_delta_is_noop(self):
        instance = random_instance(n=7, k=3)
        kernel = ScoringKernel(instance, use_numpy=False)
        before = kernel.answers
        assert kernel.apply_delta((), ()) is kernel
        assert kernel.answers is before

    def test_delete_unknown_row_raises(self):
        instance = random_instance(n=6, k=2)
        other = random_instance(n=10, k=2, seed=99)
        kernel = ScoringKernel(instance, use_numpy=False)
        with pytest.raises(KernelError):
            kernel.apply_delta((), (other.answers()[-1],))

    def test_patched_kernel_serves_algorithms(self):
        from repro.algorithms.mmr import mmr_select

        workload = StreamingWebSearch(num_docs=15, seed=5)
        instance = workload.make_instance(k=4)
        kernel = ScoringKernel(instance, use_numpy=False)
        for _ in range(8):
            workload.step()
        instance.invalidate_cache()
        delta = delta_for_instance(kernel, instance)
        kernel.apply_delta(delta.inserted, delta.deleted)
        assert mmr_select(instance, kernel=kernel) == mmr_select(instance)

    def test_item_scores_cache_invalidated(self):
        workload = StreamingWebSearch(num_docs=10, seed=7)
        instance = workload.make_instance(k=3, lam=0.0)
        kernel = ScoringKernel(instance, use_numpy=False)
        stale_scores = kernel.item_scores(instance.objective)
        workload.step()
        instance.invalidate_cache()
        delta = delta_for_instance(kernel, instance)
        kernel.apply_delta(delta.inserted, delta.deleted)
        fresh = ScoringKernel(instance, use_numpy=False)
        assert kernel.item_scores(instance.objective) == fresh.item_scores(
            instance.objective
        )
        assert len(stale_scores) != kernel.n or stale_scores is not kernel.item_scores(
            instance.objective
        )

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_duplicate_rows_in_snapshot(self, use_numpy):
        instance = random_instance(n=8, k=3)
        answers = instance.answers()
        # Inject duplicates (evaluation itself is set-semantics, but the
        # kernel contract must survive snapshots that carry them).
        instance._result_cache = answers[:3] + answers[2:3] + answers[3:]
        kernel = ScoringKernel(instance, use_numpy=use_numpy)
        assert kernel.n == 9
        # Deleting one occurrence of the duplicated row keeps the other.
        kernel.apply_delta((), (answers[2],))
        assert kernel.n == 8
        assert kernel.answers.count(answers[2]) == 1


class TestEnginePatching:
    def test_streaming_workload_patches_not_rebuilds(self):
        workload = StreamingWebSearch(num_docs=20, seed=9)
        instance = workload.make_instance(k=5)
        engine = DiversificationEngine(algorithm="mmr")
        engine.run(instance)
        for _ in range(10):
            workload.step()
            instance.invalidate_cache()
            result = engine.run(instance)
            assert result is not None
            assert result.kernel_reused
        assert engine.stats.misses == 1
        assert engine.stats.patches == 10
        assert engine.stats.stale_rebuilds == 0
        assert engine.stats.lookups == 11

    def test_patched_engine_results_match_direct(self):
        from repro.algorithms.mmr import mmr_select

        workload = StreamingWebSearch(num_docs=18, seed=13)
        instance = workload.make_instance(k=4)
        engine = DiversificationEngine(algorithm="mmr")
        engine.run(instance)
        for _ in range(6):
            workload.step()
            instance.invalidate_cache()
            result = engine.run(instance)
            direct = mmr_select(instance)
            assert result.rows == direct[1]
            assert result.value == pytest.approx(direct[0], rel=1e-12)

    def test_hit_rate_accounts_for_patches(self):
        workload = StreamingWebSearch(num_docs=10, seed=1)
        instance = workload.make_instance(k=3)
        engine = DiversificationEngine(algorithm="mmr")
        engine.run(instance)  # miss
        engine.run(instance)  # hit
        workload.step()
        instance.invalidate_cache()
        engine.run(instance)  # patch
        stats = engine.stats
        assert (stats.hits, stats.misses, stats.patches) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(1 / 3)


def test_mono_instance_patch_parity():
    """F_mono item scores read row sums — they must track deltas too."""
    workload = StreamingWebSearch(num_docs=14, seed=21)
    objective = Objective.mono(workload.relevance, workload.distance, lam=0.6)
    instance = DiversificationInstance(
        workload.query, workload.db, k=4, objective=objective
    )
    kernel = ScoringKernel(instance, use_numpy=False)
    for _ in range(6):
        workload.step()
        instance.invalidate_cache()
        delta = delta_for_instance(kernel, instance)
        kernel.apply_delta(delta.inserted, delta.deleted)
        direct = [instance.item_score(t) for t in instance.answers()]
        assert kernel.item_scores(objective) == pytest.approx(direct, rel=1e-12)
