"""Capability negotiation: declared access drives storage planning.

Selectors declare a :class:`KernelAccess` level; the engine plans each
kernel build from it.  The observable contract tested here:

* engine runs for ``ROWS_ONLY`` / ``SAMPLED_COLUMNS`` selectors never
  build full-matrix storage at all (a counting ``make_storage`` spy
  sees zero calls);
* ``FULL_MATRIX`` selectors still build storage exactly as before;
* relevance-only (λ = 0) kernels stay deferred through build *and*
  through delta patching (the ``defer_distances`` interaction gap);
* opting in to ``approx`` reroutes sketch-capable algorithms through
  the sketched selectors with a certificate, while ``approx=False`` on
  sketched storage — and every λ = 0 solve — stays exact,
  float-for-float.
"""

import pytest

import repro.engine.kernel as kernel_module
from repro.algorithms.substrate import KernelAccess, resolve_access
from repro.api import EngineConfig
from repro.core.objectives import ObjectiveKind
from repro.engine import DiversificationEngine, EngineResult, numpy_available
from repro.engine.engine import ALGORITHMS
from repro.workloads.streaming import StreamingWebSearch
from repro.workloads.synthetic import random_instance

BACKENDS = [False] + ([True] if numpy_available() else [])


@pytest.fixture
def storage_spy(monkeypatch):
    """Counts every distance-storage build the kernel layer performs."""
    calls = []
    real = kernel_module.make_storage

    def spy(kind, *args, **kwargs):
        calls.append(kind)
        return real(kind, *args, **kwargs)

    monkeypatch.setattr(kernel_module, "make_storage", spy)
    return calls


class TestDeclaredAccess:
    def test_every_algorithm_resolves(self):
        instance = random_instance(n=10, k=3, lam=0.5, seed=0)
        for name, func in ALGORITHMS.items():
            level = resolve_access(func, instance.objective)
            assert level in (
                KernelAccess.ROWS_ONLY,
                KernelAccess.SAMPLED_COLUMNS,
                KernelAccess.SELECTED_ROWS,
                KernelAccess.FULL_MATRIX,
            ), name

    def test_relevance_only_demotes_to_rows_only(self):
        lam0 = random_instance(n=10, k=3, lam=0.0, seed=0)
        lam5 = random_instance(n=10, k=3, lam=0.5, seed=0)
        for name in ("greedy_max_sum", "greedy_marginal_max_sum", "local_search"):
            func = ALGORITHMS[name]
            assert resolve_access(func, lam0.objective) == KernelAccess.ROWS_ONLY
            assert resolve_access(func, lam5.objective) != KernelAccess.ROWS_ONLY

    def test_undeclared_selector_defaults_to_full_matrix(self):
        instance = random_instance(n=10, k=3, lam=0.5, seed=0)

        def legacy_selector(inst, kernel):  # no declares_access
            return 0.0, []

        assert (
            resolve_access(legacy_selector, instance.objective)
            == KernelAccess.FULL_MATRIX
        )


class TestStoragePlanning:
    @pytest.mark.parametrize("use_numpy", BACKENDS)
    @pytest.mark.parametrize(
        "kind, lam, algorithm",
        [
            (ObjectiveKind.MONO, 0.0, "modular_top_k"),
            (ObjectiveKind.MAX_SUM, 0.0, "greedy_max_sum"),
            (ObjectiveKind.MAX_SUM, 0.0, "greedy_marginal_max_sum"),
        ],
    )
    def test_rows_only_runs_build_no_storage(
        self, storage_spy, use_numpy, kind, lam, algorithm
    ):
        instance = random_instance(n=30, k=4, kind=kind, lam=lam, seed=1)
        engine = DiversificationEngine(use_numpy=use_numpy)
        result = engine.run(instance, algorithm)
        assert result is not None
        assert storage_spy == []

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_sampled_columns_runs_build_no_storage(self, storage_spy, use_numpy):
        instance = random_instance(n=30, k=4, lam=0.5, seed=1)
        engine = DiversificationEngine(
            use_numpy=use_numpy,
            config=EngineConfig(storage="sketched", approx=True),
        )
        result = engine.run(instance, "greedy_max_sum")
        assert result is not None
        assert result.certificate is not None
        assert storage_spy == []

    @pytest.mark.parametrize("algorithm", ["greedy_max_sum", "local_search"])
    def test_full_matrix_runs_still_build_storage(self, storage_spy, algorithm):
        instance = random_instance(n=20, k=4, lam=0.5, seed=1)
        engine = DiversificationEngine()
        result = engine.run(instance, algorithm)
        assert result is not None
        assert len(storage_spy) >= 1

    def test_selected_rows_defers_until_first_distance_read(self, storage_spy):
        """mmr declares SELECTED_ROWS: the build itself allocates no
        storage — only the first actual distance read does."""
        instance = random_instance(n=20, k=4, lam=0.5, seed=1)
        engine = DiversificationEngine()
        kernel = engine.kernel_for(
            instance, access=KernelAccess.SELECTED_ROWS
        )
        assert storage_spy == []
        assert not kernel.distances_materialized
        engine.run(instance, "mmr")
        assert len(storage_spy) >= 1


class TestDeferredDeltaRegression:
    """The satellite-2 gap: a λ = 0 relevance-only kernel must stay
    matrix-free through its whole lifecycle, including delta patching."""

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_lam0_kernel_stays_deferred_across_updates(self, use_numpy):
        workload = StreamingWebSearch(num_docs=30, seed=3)
        instance = workload.make_instance(k=4, lam=0.0)
        engine = DiversificationEngine(use_numpy=use_numpy)
        first = engine.run(instance, "greedy_max_sum")
        assert first is not None
        [kernel] = engine._cache.values()
        assert not kernel.distances_materialized

        for _ in range(3):
            workload.step()
        instance.invalidate_cache()
        second = engine.run(instance, "greedy_max_sum")
        assert second is not None
        assert engine.stats.patches >= 1
        [kernel] = engine._cache.values()
        assert not kernel.distances_materialized

    def test_deferred_kernel_materializes_for_full_matrix_consumer(self):
        """Sharing across access levels is monotone-safe: the same
        cached kernel lazily materializes when a FULL_MATRIX algorithm
        arrives, and its floats match a never-deferred run."""
        instance = random_instance(n=20, k=4, lam=0.0, seed=4)
        engine = DiversificationEngine()
        engine.run(instance, "greedy_max_sum")
        [kernel] = engine._cache.values()
        assert not kernel.distances_materialized

        shifted = instance.objective.with_lambda(0.7)
        full = engine.run(instance.with_objective(shifted), "greedy_max_sum")
        assert full is not None


class TestApproxDispatch:
    def test_approx_requires_opt_in(self):
        instance = random_instance(n=25, k=4, lam=0.5, seed=5)
        engine = DiversificationEngine(
            config=EngineConfig(storage="sketched", approx=False)
        )
        exact = DiversificationEngine()
        result = engine.run(instance, "greedy_max_sum")
        baseline = exact.run(instance, "greedy_max_sum")
        # approx off: sketched storage still solves exactly, bit-equal.
        assert result.certificate is None
        assert result.value == baseline.value
        assert result.rows == baseline.rows

    def test_approx_run_carries_certificate(self):
        instance = random_instance(n=40, k=5, lam=0.5, seed=6)
        engine = DiversificationEngine(
            config=EngineConfig(storage="sketched", approx=True)
        )
        exact = DiversificationEngine()
        result = engine.run(instance, "greedy_max_sum")
        cert = result.certificate
        assert cert is not None
        assert cert.lower <= result.value <= cert.upper + 1e-9
        baseline = exact.run(instance, "greedy_marginal_max_sum")
        assert result.value >= 0.9 * baseline.value

    def test_approx_skips_relevance_only(self):
        instance = random_instance(n=25, k=4, lam=0.0, seed=7)
        engine = DiversificationEngine(
            config=EngineConfig(storage="sketched", approx=True)
        )
        exact = DiversificationEngine()
        result = engine.run(instance, "greedy_max_sum")
        assert result.certificate is None
        assert result.value == exact.run(instance, "greedy_max_sum").value

    def test_approx_reuses_cached_kernel(self):
        instance = random_instance(n=30, k=4, lam=0.5, seed=8)
        engine = DiversificationEngine(
            config=EngineConfig(storage="sketched", approx=True)
        )
        first = engine.run(instance, "greedy_max_sum")
        second = engine.run(instance, "mmr")
        assert not first.kernel_reused
        assert second.kernel_reused
        assert second.certificate is not None

    def test_approx_result_roundtrips(self):
        instance = random_instance(n=30, k=4, lam=0.5, seed=9)
        engine = DiversificationEngine(
            config=EngineConfig(storage="sketched", approx=True)
        )
        result = engine.run(instance, "greedy_max_sum")
        revived = EngineResult.from_dict(result.to_dict())
        assert revived.certificate == result.certificate
        assert revived.value == result.value
