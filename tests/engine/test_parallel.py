"""Process-pool builds and bounded-memory spilling: exactness first.

The multicore layer (:mod:`repro.engine.parallel`) and the tile-budget
layer in :class:`~repro.engine.storage.TiledStorage` are pure
performance features — neither may move a float.  These tests pin that:

* process-built tiles are **element-wise identical** to the serial
  build across backends × dtypes × block sizes, and stay identical
  through ``apply_delta`` patches;
* closure-based providers (unpicklable snapshots) degrade to the
  thread path silently and correctly;
* a spilling grid (``max_resident_tiles`` / ``max_resident_bytes``,
  with or without ``spill_dir``) answers every read exactly like an
  unbounded one, while actually holding resident tiles at the budget;
* the sketched landmark columns built through the process pool equal
  the serially built sketch.
"""

import pytest

from repro.core.functions import DistanceFunction, RelevanceFunction
from repro.core.objectives import Objective, ObjectiveKind
from repro.engine import (
    PARALLEL_MODES,
    KernelError,
    ScoringKernel,
    TiledStorage,
    available_cpus,
    numpy_available,
    resolve_workers,
    supports_process_pool,
)
from repro.engine.parallel import (
    ProcessTileBuilder,
    validate_parallel,
    validate_workers,
)
from repro.workloads.synthetic import random_instance

BACKENDS = [False] + ([True] if numpy_available() else [])


def tiled_kernel(instance, use_numpy, **knobs):
    knobs.setdefault("storage", "tiled")
    return ScoringKernel(instance, use_numpy=use_numpy, **knobs)


def closure_instance(n=14, k=4, seed=5):
    """An instance whose scoring snapshot cannot pickle (lambdas)."""
    base = random_instance(
        n=n, k=k, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=seed
    )
    objective = Objective(
        ObjectiveKind.MAX_SUM,
        relevance=RelevanceFunction.from_callable(
            lambda row: float(row.values[2]), name="closure_rel"
        ),
        distance=DistanceFunction.from_callable(
            lambda a, b: abs(float(a.values[2]) - float(b.values[2])),
            name="closure_dis",
        ),
        lam=0.5,
    )
    return base.with_objective(objective)


def assert_matrices_equal(expected, actual):
    assert actual.n == expected.n
    assert actual.distance_rows() == expected.distance_rows()
    assert actual.row_distance_sums() == expected.row_distance_sums()
    for i in range(expected.n):
        for j in range(expected.n):
            assert actual.distance_between(i, j) == expected.distance_between(
                i, j
            )


class TestKnobs:
    def test_validate_workers_passthrough(self):
        assert validate_workers(None) is None
        assert validate_workers("auto") == "auto"
        assert validate_workers(3) == 3

    @pytest.mark.parametrize("bad", [0, -1, True, 2.5, "many"])
    def test_validate_workers_rejects(self, bad):
        with pytest.raises(ValueError):
            validate_workers(bad)

    def test_validate_workers_custom_error(self):
        with pytest.raises(KernelError):
            validate_workers(0, KernelError)

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(5) == 5
        assert resolve_workers("auto") == available_cpus()
        assert available_cpus() >= 1

    def test_validate_parallel(self):
        assert validate_parallel(None) == "thread"
        for mode in PARALLEL_MODES:
            assert validate_parallel(mode) == mode
        with pytest.raises(ValueError):
            validate_parallel("gpu")
        with pytest.raises(KernelError):
            validate_parallel("gpu", KernelError)

    def test_kernel_accepts_auto_and_rejects_bad_modes(self):
        instance = random_instance(n=8, k=3, seed=1)
        kernel = tiled_kernel(instance, False, workers="auto")
        assert kernel.workers == "auto"
        with pytest.raises(KernelError):
            tiled_kernel(instance, False, parallel="gpu")
        with pytest.raises(KernelError):
            ScoringKernel(instance, use_numpy=False, parallel="process")


class TestProcessParity:
    """Worker-built tiles hold the same floats a serial build would."""

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    @pytest.mark.parametrize("dtype", [None, "float32"])
    @pytest.mark.parametrize("block_size", [3, 7, 12])
    def test_identical_to_serial(self, use_numpy, dtype, block_size):
        instance = random_instance(
            n=23, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=2
        )
        serial = tiled_kernel(
            instance, use_numpy, block_size=block_size, dtype=dtype
        )
        pooled = tiled_kernel(
            instance,
            use_numpy,
            block_size=block_size,
            dtype=dtype,
            workers=2,
            parallel="process",
        )
        serial.materialize_all()
        pooled.materialize_all()
        assert pooled._storage.is_fully_built
        assert_matrices_equal(serial, pooled)

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_identical_through_apply_delta(self, use_numpy):
        instance = random_instance(
            n=19, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=6
        )
        serial = tiled_kernel(instance, use_numpy, block_size=5)
        pooled = tiled_kernel(
            instance, use_numpy, block_size=5, workers=2, parallel="process"
        )
        serial.materialize_all()
        pooled.materialize_all()
        rows = list(instance.answers())
        for kernel in (serial, pooled):
            kernel.apply_delta(
                inserted=[rows[3], rows[7]], deleted=[rows[1], rows[10]]
            )
        assert pooled.answers == serial.answers
        assert_matrices_equal(serial, pooled)

    def test_supports_process_pool_probe(self):
        instance = random_instance(n=9, k=3, seed=4)
        provider = instance.objective.provider
        assert supports_process_pool(provider, instance.answers())
        closed = closure_instance()
        kernel = ScoringKernel(closed, use_numpy=False)
        assert not supports_process_pool(
            kernel.provider, closed.answers()
        )

    def test_builder_refuses_unpicklable_snapshot(self):
        closed = closure_instance()
        kernel = ScoringKernel(closed, use_numpy=False)
        builder = ProcessTileBuilder.create(
            kernel.provider, tuple(closed.answers()), False, 2
        )
        assert builder is None

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_closure_provider_degrades_to_threads(self, use_numpy):
        """parallel='process' on an unpicklable snapshot must build the
        exact grid anyway (silently, through the thread path)."""
        instance = closure_instance()
        serial = tiled_kernel(instance, use_numpy, block_size=4)
        pooled = tiled_kernel(
            instance, use_numpy, block_size=4, workers=2, parallel="process"
        )
        serial.materialize_all()
        pooled.materialize_all()
        assert pooled._storage.is_fully_built
        assert_matrices_equal(serial, pooled)


class TestSpilling:
    @pytest.mark.parametrize("use_numpy", BACKENDS)
    @pytest.mark.parametrize("budget", [dict(max_resident_tiles=2),
                                        dict(max_resident_bytes=1024)])
    def test_bounded_grid_reads_exactly(self, use_numpy, budget):
        instance = random_instance(
            n=17, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=2
        )
        dense = ScoringKernel(instance, use_numpy=use_numpy)
        bounded = tiled_kernel(instance, use_numpy, block_size=4, **budget)
        bounded.materialize_all()
        storage = bounded._storage
        assert isinstance(storage, TiledStorage)
        stats = storage.spill_stats
        assert stats["evictions"] > 0
        assert stats["rebuilds"] == 0  # materialize evicts; no re-read yet
        assert_matrices_equal(dense, bounded)
        assert storage.spill_stats["rebuilds"] > 0

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_budget_holds_during_full_materialization(self, use_numpy):
        instance = random_instance(n=20, k=4, seed=3)
        kernel = tiled_kernel(
            instance, use_numpy, block_size=4, max_resident_tiles=3
        )
        kernel.materialize_all()
        stats = kernel.storage_stats()
        assert stats is not None
        assert 1 <= stats["resident_tiles"] <= 3

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_spill_dir_round_trips_exactly(self, use_numpy, tmp_path):
        instance = random_instance(
            n=17, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=2
        )
        dense = ScoringKernel(instance, use_numpy=use_numpy)
        spilled = tiled_kernel(
            instance,
            use_numpy,
            block_size=4,
            max_resident_tiles=2,
            spill_dir=str(tmp_path),
        )
        spilled.materialize_all()
        assert_matrices_equal(dense, spilled)
        stats = spilled.storage_stats()
        assert stats["spills"] > 0
        assert stats["spill_loads"] > 0
        assert stats["rebuilds"] == 0  # spilled tiles load, never rescore
        assert list(tmp_path.iterdir()), "spill_dir holds no tile files"

    def test_storage_stats_surface(self):
        instance = random_instance(n=10, k=3, seed=1)
        dense = ScoringKernel(instance, use_numpy=False)
        assert dense.storage_stats() is None
        unbudgeted = tiled_kernel(instance, False, block_size=4)
        unbudgeted.materialize_all()
        stats = unbudgeted.storage_stats()
        assert stats["evictions"] == 0 and stats["spills"] == 0
        assert stats["resident_tiles"] == unbudgeted._storage.tiles_built
        budgeted = tiled_kernel(
            instance, False, block_size=4, max_resident_tiles=2
        )
        budgeted.materialize_all()
        assert budgeted.storage_stats()["evictions"] > 0

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_process_build_into_spilling_grid(self, use_numpy):
        """The two features compose: pool-built tiles land in a budgeted
        grid, evict, rebuild on touch — and every read stays exact."""
        instance = random_instance(
            n=18, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=8
        )
        dense = ScoringKernel(instance, use_numpy=use_numpy)
        kernel = tiled_kernel(
            instance,
            use_numpy,
            block_size=4,
            workers=2,
            parallel="process",
            max_resident_tiles=2,
        )
        kernel.materialize_all()
        assert kernel.storage_stats()["evictions"] > 0
        assert_matrices_equal(dense, kernel)


class TestSketchPooled:
    @staticmethod
    def columns(sketch):
        c = sketch._c
        return c.tolist() if sketch.backend == "numpy" else c

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_pooled_sketch_equals_serial(self, use_numpy):
        instance = random_instance(
            n=23, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=2
        )
        serial = ScoringKernel(
            instance,
            use_numpy=use_numpy,
            storage="sketched",
            sketch_columns=5,
            block_size=4,
        )
        pooled = ScoringKernel(
            instance,
            use_numpy=use_numpy,
            storage="sketched",
            sketch_columns=5,
            block_size=4,
            workers=2,
            parallel="process",
        )
        a, b = serial.sketch(), pooled.sketch()
        assert b.landmark_positions == a.landmark_positions
        assert self.columns(b) == self.columns(a)
