"""Process-pool builds and bounded-memory spilling: exactness first.

The multicore layer (:mod:`repro.engine.parallel`) and the tile-budget
layer in :class:`~repro.engine.storage.TiledStorage` are pure
performance features — neither may move a float.  These tests pin that:

* process-built tiles are **element-wise identical** to the serial
  build across backends × dtypes × block sizes, and stay identical
  through ``apply_delta`` patches;
* closure-based providers (unpicklable snapshots) degrade to the
  thread path silently and correctly;
* a spilling grid (``max_resident_tiles`` / ``max_resident_bytes``,
  with or without ``spill_dir``) answers every read exactly like an
  unbounded one, while actually holding resident tiles at the budget;
* ``spill_mode="mmap"`` row reads come back byte-identical to the
  rehydrate-whole-tiles path on both backends and dtypes;
* the warm pool registry leases byte-identical snapshots only — hit/
  miss/evict/TTL/invalidate lifecycle, ``apply_delta`` invalidation,
  and float-identical warm-vs-cold builds;
* the sketched landmark columns built through the process pool equal
  the serially built sketch.
"""

import pytest

from repro.core.functions import DistanceFunction, RelevanceFunction
from repro.core.objectives import Objective, ObjectiveKind
from repro.engine import (
    PARALLEL_MODES,
    KernelError,
    ScoringKernel,
    TiledStorage,
    available_cpus,
    numpy_available,
    resolve_workers,
    supports_process_pool,
)
from repro.engine.parallel import (
    ProcessTileBuilder,
    WarmPoolRegistry,
    validate_parallel,
    validate_workers,
    warm_pool_registry,
)
from repro.workloads.synthetic import random_instance

BACKENDS = [False] + ([True] if numpy_available() else [])


def tiled_kernel(instance, use_numpy, **knobs):
    knobs.setdefault("storage", "tiled")
    return ScoringKernel(instance, use_numpy=use_numpy, **knobs)


def closure_instance(n=14, k=4, seed=5):
    """An instance whose scoring snapshot cannot pickle (lambdas)."""
    base = random_instance(
        n=n, k=k, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=seed
    )
    objective = Objective(
        ObjectiveKind.MAX_SUM,
        relevance=RelevanceFunction.from_callable(
            lambda row: float(row.values[2]), name="closure_rel"
        ),
        distance=DistanceFunction.from_callable(
            lambda a, b: abs(float(a.values[2]) - float(b.values[2])),
            name="closure_dis",
        ),
        lam=0.5,
    )
    return base.with_objective(objective)


def assert_matrices_equal(expected, actual):
    assert actual.n == expected.n
    assert actual.distance_rows() == expected.distance_rows()
    assert actual.row_distance_sums() == expected.row_distance_sums()
    for i in range(expected.n):
        for j in range(expected.n):
            assert actual.distance_between(i, j) == expected.distance_between(
                i, j
            )


class TestKnobs:
    def test_validate_workers_passthrough(self):
        assert validate_workers(None) is None
        assert validate_workers("auto") == "auto"
        assert validate_workers(3) == 3

    @pytest.mark.parametrize("bad", [0, -1, True, 2.5, "many"])
    def test_validate_workers_rejects(self, bad):
        with pytest.raises(ValueError):
            validate_workers(bad)

    def test_validate_workers_custom_error(self):
        with pytest.raises(KernelError):
            validate_workers(0, KernelError)

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(5) == 5
        assert resolve_workers("auto") == available_cpus()
        assert available_cpus() >= 1

    def test_validate_parallel(self):
        assert validate_parallel(None) == "thread"
        for mode in PARALLEL_MODES:
            assert validate_parallel(mode) == mode
        with pytest.raises(ValueError):
            validate_parallel("gpu")
        with pytest.raises(KernelError):
            validate_parallel("gpu", KernelError)

    def test_kernel_accepts_auto_and_rejects_bad_modes(self):
        instance = random_instance(n=8, k=3, seed=1)
        kernel = tiled_kernel(instance, False, workers="auto")
        assert kernel.workers == "auto"
        with pytest.raises(KernelError):
            tiled_kernel(instance, False, parallel="gpu")
        with pytest.raises(KernelError):
            ScoringKernel(instance, use_numpy=False, parallel="process")


class TestProcessParity:
    """Worker-built tiles hold the same floats a serial build would."""

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    @pytest.mark.parametrize("dtype", [None, "float32"])
    @pytest.mark.parametrize("block_size", [3, 7, 12])
    def test_identical_to_serial(self, use_numpy, dtype, block_size):
        instance = random_instance(
            n=23, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=2
        )
        serial = tiled_kernel(
            instance, use_numpy, block_size=block_size, dtype=dtype
        )
        pooled = tiled_kernel(
            instance,
            use_numpy,
            block_size=block_size,
            dtype=dtype,
            workers=2,
            parallel="process",
        )
        serial.materialize_all()
        pooled.materialize_all()
        assert pooled._storage.is_fully_built
        assert_matrices_equal(serial, pooled)

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_identical_through_apply_delta(self, use_numpy):
        instance = random_instance(
            n=19, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=6
        )
        serial = tiled_kernel(instance, use_numpy, block_size=5)
        pooled = tiled_kernel(
            instance, use_numpy, block_size=5, workers=2, parallel="process"
        )
        serial.materialize_all()
        pooled.materialize_all()
        rows = list(instance.answers())
        for kernel in (serial, pooled):
            kernel.apply_delta(
                inserted=[rows[3], rows[7]], deleted=[rows[1], rows[10]]
            )
        assert pooled.answers == serial.answers
        assert_matrices_equal(serial, pooled)

    def test_supports_process_pool_probe(self):
        instance = random_instance(n=9, k=3, seed=4)
        provider = instance.objective.provider
        assert supports_process_pool(provider, instance.answers())
        closed = closure_instance()
        kernel = ScoringKernel(closed, use_numpy=False)
        assert not supports_process_pool(
            kernel.provider, closed.answers()
        )

    def test_builder_refuses_unpicklable_snapshot(self):
        closed = closure_instance()
        kernel = ScoringKernel(closed, use_numpy=False)
        builder = ProcessTileBuilder.create(
            kernel.provider, tuple(closed.answers()), False, 2
        )
        assert builder is None

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_closure_provider_degrades_to_threads(self, use_numpy):
        """parallel='process' on an unpicklable snapshot must build the
        exact grid anyway (silently, through the thread path)."""
        instance = closure_instance()
        serial = tiled_kernel(instance, use_numpy, block_size=4)
        pooled = tiled_kernel(
            instance, use_numpy, block_size=4, workers=2, parallel="process"
        )
        serial.materialize_all()
        pooled.materialize_all()
        assert pooled._storage.is_fully_built
        assert_matrices_equal(serial, pooled)


class TestSpilling:
    @pytest.mark.parametrize("use_numpy", BACKENDS)
    @pytest.mark.parametrize("budget", [dict(max_resident_tiles=2),
                                        dict(max_resident_bytes=1024)])
    def test_bounded_grid_reads_exactly(self, use_numpy, budget):
        instance = random_instance(
            n=17, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=2
        )
        dense = ScoringKernel(instance, use_numpy=use_numpy)
        bounded = tiled_kernel(instance, use_numpy, block_size=4, **budget)
        bounded.materialize_all()
        storage = bounded._storage
        assert isinstance(storage, TiledStorage)
        stats = storage.spill_stats
        assert stats["evictions"] > 0
        assert stats["rebuilds"] == 0  # materialize evicts; no re-read yet
        assert_matrices_equal(dense, bounded)
        assert storage.spill_stats["rebuilds"] > 0

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_budget_holds_during_full_materialization(self, use_numpy):
        instance = random_instance(n=20, k=4, seed=3)
        kernel = tiled_kernel(
            instance, use_numpy, block_size=4, max_resident_tiles=3
        )
        kernel.materialize_all()
        stats = kernel.storage_stats()
        assert stats is not None
        assert 1 <= stats["resident_tiles"] <= 3

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_spill_dir_round_trips_exactly(self, use_numpy, tmp_path):
        instance = random_instance(
            n=17, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=2
        )
        dense = ScoringKernel(instance, use_numpy=use_numpy)
        spilled = tiled_kernel(
            instance,
            use_numpy,
            block_size=4,
            max_resident_tiles=2,
            spill_dir=str(tmp_path),
        )
        spilled.materialize_all()
        assert_matrices_equal(dense, spilled)
        stats = spilled.storage_stats()
        assert stats["spills"] > 0
        assert stats["spill_loads"] > 0
        assert stats["rebuilds"] == 0  # spilled tiles load, never rescore
        assert list(tmp_path.iterdir()), "spill_dir holds no tile files"

    def test_storage_stats_surface(self):
        instance = random_instance(n=10, k=3, seed=1)
        deferred = ScoringKernel(instance, use_numpy=False, defer_distances=True)
        stats = deferred.storage_stats()
        assert stats["kind"] == "deferred"
        assert stats["resident_bytes"] == 0
        dense = ScoringKernel(instance, use_numpy=False)
        stats = dense.storage_stats()
        assert stats["kind"] == "dense"
        assert stats["resident_tiles"] == 1
        assert stats["resident_bytes"] == dense.n * dense.n * 8
        assert stats["evictions"] == 0 and stats["mmap_reads"] == 0
        unbudgeted = tiled_kernel(instance, False, block_size=4)
        unbudgeted.materialize_all()
        stats = unbudgeted.storage_stats()
        assert stats["evictions"] == 0 and stats["spills"] == 0
        assert stats["resident_tiles"] == unbudgeted._storage.tiles_built
        budgeted = tiled_kernel(
            instance, False, block_size=4, max_resident_tiles=2
        )
        budgeted.materialize_all()
        stats = budgeted.storage_stats()
        assert stats["kind"] == "tiled"
        assert stats["evictions"] > 0
        # Every kind reports the same keys — aggregators never branch.
        assert set(stats) == set(dense.storage_stats())

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_process_build_into_spilling_grid(self, use_numpy):
        """The two features compose: pool-built tiles land in a budgeted
        grid, evict, rebuild on touch — and every read stays exact."""
        instance = random_instance(
            n=18, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=8
        )
        dense = ScoringKernel(instance, use_numpy=use_numpy)
        kernel = tiled_kernel(
            instance,
            use_numpy,
            block_size=4,
            workers=2,
            parallel="process",
            max_resident_tiles=2,
        )
        kernel.materialize_all()
        assert kernel.storage_stats()["evictions"] > 0
        assert_matrices_equal(dense, kernel)


class TestMmapSpill:
    @pytest.mark.parametrize("use_numpy", BACKENDS)
    @pytest.mark.parametrize("dtype", [None, "float32"])
    def test_mmap_reads_exactly(self, use_numpy, dtype, tmp_path):
        """Row and scalar reads off mapped segment windows hold the
        same bytes the rehydrate-whole-tiles grid holds."""
        instance = random_instance(
            n=17, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=2
        )
        plain = tiled_kernel(instance, use_numpy, block_size=4, dtype=dtype)
        mapped = tiled_kernel(
            instance,
            use_numpy,
            block_size=4,
            dtype=dtype,
            max_resident_tiles=2,
            spill_dir=str(tmp_path),
            spill_mode="mmap",
        )
        plain.materialize_all()
        mapped.materialize_all()
        for i in range(plain.n):
            assert list(mapped.copy_distance_row(i)) == list(
                plain.copy_distance_row(i)
            )
            for j in range(plain.n):
                assert mapped.distance_between(i, j) == plain.distance_between(
                    i, j
                )
        stats = mapped.storage_stats()
        assert stats["spills"] > 0
        assert stats["mmap_reads"] > 0
        assert stats["bytes_mapped"] > 0
        # The per-kernel segment file is the only spill artifact.
        assert any(p.name == "segment.bin" for p in tmp_path.rglob("*"))

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_mmap_full_consumers_stay_exact(self, use_numpy, tmp_path):
        """Whole-matrix consumers (row sums, to_lists) over a mapped
        grid equal the dense baseline float for float."""
        instance = random_instance(
            n=15, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=9
        )
        dense = ScoringKernel(instance, use_numpy=use_numpy)
        mapped = tiled_kernel(
            instance,
            use_numpy,
            block_size=4,
            max_resident_tiles=2,
            spill_dir=str(tmp_path),
            spill_mode="mmap",
        )
        mapped.materialize_all()
        assert_matrices_equal(dense, mapped)

    def test_mmap_requires_spill_dir(self):
        instance = random_instance(n=8, k=3, seed=1)
        with pytest.raises(KernelError, match="spill_dir"):
            tiled_kernel(instance, False, spill_mode="mmap")

    def test_unknown_spill_mode_rejected(self):
        instance = random_instance(n=8, k=3, seed=1)
        with pytest.raises(KernelError, match="spill_mode"):
            tiled_kernel(instance, False, spill_mode="tape", spill_dir="/tmp")

    def test_dense_rejects_spill_mode(self, tmp_path):
        instance = random_instance(n=8, k=3, seed=1)
        with pytest.raises(KernelError, match="dense"):
            ScoringKernel(
                instance,
                use_numpy=False,
                spill_dir=str(tmp_path),
                spill_mode="mmap",
            )


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def _snapshot(seed, n=12):
    instance = random_instance(
        n=n, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=seed
    )
    kernel = ScoringKernel(instance, use_numpy=False, defer_distances=True)
    return kernel.provider, tuple(instance.answers())


class TestWarmPools:
    """Registry lifecycle.  Executors here never receive work (workers
    spawn lazily on first submit), so these run at thread speed."""

    def test_miss_then_hit_reuses_executor(self):
        registry = WarmPoolRegistry(max_pools=2, ttl=100.0, clock=FakeClock())
        provider, answers = _snapshot(seed=1)
        first = registry.acquire(provider, answers, False, 2)
        executor = first._executor
        first.close()
        second = registry.acquire(provider, answers, False, 2)
        assert second._executor is executor
        second.close()
        stats = registry.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert stats["pools"] == 1 and stats["leased"] == 0
        registry.clear()

    def test_leased_pool_bypasses_to_cold(self):
        registry = WarmPoolRegistry(max_pools=2, ttl=100.0, clock=FakeClock())
        provider, answers = _snapshot(seed=2)
        first = registry.acquire(provider, answers, False, 2)
        second = registry.acquire(provider, answers, False, 2)
        assert second._executor is not first._executor
        assert registry.stats()["bypasses"] == 1
        second.close()  # cold builder: owns and shuts down its pool
        first.close()
        assert registry.stats()["leased"] == 0
        registry.clear()

    def test_lru_eviction_at_budget(self):
        registry = WarmPoolRegistry(max_pools=1, ttl=100.0, clock=FakeClock())
        for seed in (3, 4):
            provider, answers = _snapshot(seed=seed)
            registry.acquire(provider, answers, False, 2).close()
        stats = registry.stats()
        assert stats["evictions"] == 1 and stats["pools"] == 1
        registry.clear()

    def test_ttl_expires_idle_pools(self):
        clock = FakeClock()
        registry = WarmPoolRegistry(max_pools=4, ttl=60.0, clock=clock)
        provider, answers = _snapshot(seed=5)
        registry.acquire(provider, answers, False, 2).close()
        clock.advance(61.0)
        registry.reap()
        stats = registry.stats()
        assert stats["expirations"] == 1 and stats["pools"] == 0
        # The next acquire is a fresh miss, not a stale hit.
        registry.acquire(provider, answers, False, 2).close()
        assert registry.stats()["misses"] == 2
        registry.clear()

    def test_invalidate_drops_providers_pools(self):
        registry = WarmPoolRegistry(max_pools=4, ttl=100.0, clock=FakeClock())
        provider, answers = _snapshot(seed=6)
        other_provider, other_answers = _snapshot(seed=7)
        registry.acquire(provider, answers, False, 2).close()
        registry.acquire(other_provider, other_answers, False, 2).close()
        assert registry.invalidate(provider) == 1
        stats = registry.stats()
        assert stats["invalidations"] == 1 and stats["pools"] == 1
        registry.acquire(provider, answers, False, 2).close()
        assert registry.stats()["misses"] == 3
        registry.clear()

    def test_zero_limit_bypasses_registry(self):
        registry = WarmPoolRegistry(max_pools=4, ttl=100.0, clock=FakeClock())
        provider, answers = _snapshot(seed=8)
        builder = registry.acquire(provider, answers, False, 2, max_pools=0)
        builder.close()
        stats = registry.stats()
        assert stats["bypasses"] == 1 and stats["pools"] == 0
        registry.clear()

    def test_unpicklable_snapshot_returns_none(self):
        registry = WarmPoolRegistry(max_pools=2, ttl=100.0, clock=FakeClock())
        closed = closure_instance()
        kernel = ScoringKernel(closed, use_numpy=False)
        assert (
            registry.acquire(kernel.provider, tuple(closed.answers()), False, 2)
            is None
        )
        assert len(registry) == 0

    def test_apply_delta_invalidates_global_registry(self):
        registry = warm_pool_registry()
        registry.clear()
        instance = random_instance(
            n=16, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=11
        )
        kernel = tiled_kernel(
            instance, False, block_size=4, workers=2, parallel="process"
        )
        try:
            kernel.materialize_all()
            assert len(registry) == 1
            rows = list(instance.answers())
            kernel.apply_delta(deleted=[rows[0]])
            assert len(registry) == 0
        finally:
            registry.clear()

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_warm_build_floats_equal_cold(self, use_numpy):
        """The second (warm) build holds exactly the floats of the first
        (cold) build and of a serial build — on both backends."""
        registry = warm_pool_registry()
        registry.clear()
        instance = random_instance(
            n=19, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=12
        )
        try:
            serial = tiled_kernel(instance, use_numpy, block_size=5)
            serial.materialize_all()
            cold = tiled_kernel(
                instance, use_numpy, block_size=5, workers=2, parallel="process"
            )
            cold.materialize_all()
            assert registry.stats()["misses"] >= 1
            warm = tiled_kernel(
                instance, use_numpy, block_size=5, workers=2, parallel="process"
            )
            warm.materialize_all()
            assert registry.stats()["hits"] >= 1
            assert_matrices_equal(serial, cold)
            assert_matrices_equal(serial, warm)
        finally:
            registry.clear()


class TestSketchPooled:
    @staticmethod
    def columns(sketch):
        c = sketch._c
        return c.tolist() if sketch.backend == "numpy" else c

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_pooled_sketch_equals_serial(self, use_numpy):
        instance = random_instance(
            n=23, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=2
        )
        serial = ScoringKernel(
            instance,
            use_numpy=use_numpy,
            storage="sketched",
            sketch_columns=5,
            block_size=4,
        )
        pooled = ScoringKernel(
            instance,
            use_numpy=use_numpy,
            storage="sketched",
            sketch_columns=5,
            block_size=4,
            workers=2,
            parallel="process",
        )
        a, b = serial.sketch(), pooled.sketch()
        assert b.landmark_positions == a.landmark_positions
        assert self.columns(b) == self.columns(a)
