"""Engine-level retrieval mechanics: caching, invalidation, routing."""

import pytest

from repro.api import DiversifyRequest
from repro.engine import DiversificationEngine, EngineResult, numpy_available
from repro.workloads import corpus

BACKENDS = [False] + ([True] if numpy_available() else [])


def make(use_numpy, n=200, k=6):
    documents = corpus.generate(num_docs=n, use_numpy=use_numpy)
    base = documents.full_instance(k=k)
    engine = DiversificationEngine(use_numpy=use_numpy)
    return documents, base, engine


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_retriever_for_is_cached_per_materialization(use_numpy):
    documents, base, engine = make(use_numpy)
    first = engine.retriever_for(base)
    second = engine.retriever_for(base)
    assert first is second
    assert engine.cached_retrievers == 1
    assert engine.retrieval_stats["indexes_built"] == 1
    other = documents.full_instance(k=4)  # fresh query/db objects
    engine.retriever_for(other)
    assert engine.cached_retrievers == 2
    assert engine.retrieval_stats["indexes_built"] == 2


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_pool_memoization_and_kernel_reuse(use_numpy):
    documents, base, engine = make(use_numpy)
    query = documents.query_text(0)
    request = DiversifyRequest(
        instance=base, k=6, algorithm="greedy_max_sum",
        query_text=query, pool_size=30,
    )
    first = engine.run(request=request)
    assert engine.retrieval_stats["pool_misses"] == 1
    assert first.kernel_reused is False
    again = engine.run(request=request)
    assert engine.retrieval_stats["pool_hits"] == 1
    # The memoized pool instance is the same object — its kernel too.
    assert again.kernel_reused is True
    assert again.value == first.value
    assert again.rows == first.rows


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_k_variants_share_the_pool_kernel(use_numpy):
    documents, base, engine = make(use_numpy, k=8)
    query = documents.query_text(2)
    results = []
    for k in (3, 5, 8):
        results.append(
            engine.run(
                request=DiversifyRequest(
                    instance=base, k=k, algorithm="greedy_max_sum",
                    query_text=query, pool_size=40,
                )
            )
        )
    assert engine.retrieval_stats["pool_misses"] == 1
    assert engine.retrieval_stats["pool_hits"] == 2
    assert [len(result.rows) for result in results] == [3, 5, 8]
    # Later k-variants reuse the kernel the first solve built.
    assert results[1].kernel_reused and results[2].kernel_reused


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_invalidate_retrieval_drops_index_and_pools(use_numpy):
    documents, base, engine = make(use_numpy)
    query = documents.query_text(0)
    engine.run(
        request=DiversifyRequest(
            instance=base, k=6, algorithm="greedy_max_sum",
            query_text=query, pool_size=30,
        )
    )
    assert engine.cached_retrievers == 1
    assert engine.invalidate_retrieval(base) is True
    assert engine.cached_retrievers == 0
    assert engine.retrieval_stats["invalidations"] == 1
    # Second call: nothing live to drop.
    assert engine.invalidate_retrieval(base) is False
    assert engine.retrieval_stats["invalidations"] == 1
    # The next retrieval request rebuilds index and pool from scratch.
    engine.run(
        request=DiversifyRequest(
            instance=base, k=6, algorithm="greedy_max_sum",
            query_text=query, pool_size=30,
        )
    )
    assert engine.retrieval_stats["indexes_built"] == 2
    assert engine.retrieval_stats["pool_misses"] == 2


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_clear_cache_clears_retrieval_state(use_numpy):
    documents, base, engine = make(use_numpy)
    engine.run(
        request=DiversifyRequest(
            instance=base, k=6, algorithm="greedy_max_sum",
            query_text=documents.query_text(0), pool_size=30,
        )
    )
    assert engine.cached_retrievers == 1
    engine.clear_cache()
    assert engine.cached_retrievers == 0
    assert engine.cached_kernels == 0


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_plain_requests_bypass_retrieval(use_numpy):
    documents, base, engine = make(use_numpy, n=80)
    result = engine.run(
        request=DiversifyRequest(instance=base, k=6, algorithm="greedy_max_sum")
    )
    assert result.retrieval is None
    assert engine.cached_retrievers == 0
    assert engine.retrieval_stats["pool_misses"] == 0
    # Identical to the historical (instance, algorithm) call.
    direct = DiversificationEngine(use_numpy=use_numpy).run(
        base, "greedy_max_sum"
    )
    assert result.value == direct.value
    assert result.rows == direct.rows


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_result_retrieval_block_roundtrips(use_numpy):
    documents, base, engine = make(use_numpy)
    result = engine.run(
        request=DiversifyRequest(
            instance=base, k=6, algorithm="greedy_max_sum",
            query_text=documents.query_text(1), pool_size=30,
        )
    )
    block = result.retrieval
    assert block["retriever"] == "hybrid"
    assert block["pool"] <= 30
    assert block["corpus_size"] == 200
    assert block["elapsed_ms"] >= 0.0
    rebuilt = EngineResult.from_dict(result.to_dict())
    assert rebuilt.retrieval == block
    assert rebuilt.value == result.value
    assert rebuilt.rows == result.rows
    # Plain results keep a null retrieval slot through the roundtrip.
    plain = engine.run(base, "greedy_max_sum")
    assert EngineResult.from_dict(plain.to_dict()).retrieval is None


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_stale_snapshot_rebuilds_the_index(use_numpy):
    """The retriever cache applies the kernel's freshness rule: mutate
    the database in place and the next cut re-indexes."""
    documents, base, engine = make(use_numpy, n=60)
    engine.retriever_for(base)
    assert engine.retrieval_stats["indexes_built"] == 1
    relation = base.db.relation(corpus.DOCS.name)
    relation.discard(documents.row(0))
    base.invalidate_cache()
    engine.retriever_for(base)
    assert engine.retrieval_stats["indexes_built"] == 2
