"""Sketch clamping at m >= n: exact dense semantics, never an error.

Regression suite for the edge where the configured (or derived)
landmark count reaches the snapshot size.  The contract: every row
becomes a landmark, the triangle-inequality bounds collapse to the
exact distances (lower == upper == d via the l = j column), and no
snapshot is too small to sketch.
"""

import pytest

from repro.core.providers import LANDMARK_STRATEGIES
from repro.engine import ScoringKernel, SketchedStorage, numpy_available
from repro.engine.storage import StorageError
from repro.workloads.synthetic import random_instance, scoring_provider

BACKENDS = [False] + ([True] if numpy_available() else [])


def sketched_kernel(instance, use_numpy, **knobs):
    return ScoringKernel(instance, use_numpy=use_numpy, storage="sketched", **knobs)


@pytest.mark.parametrize("strategy", sorted(LANDMARK_STRATEGIES))
def test_select_landmarks_clamps_to_every_row(strategy):
    instance = random_instance(n=6, seed=3)
    provider = scoring_provider()
    rows = instance.answers()
    relevance = [0.0] * len(rows)
    for m in (6, 7, 100):
        positions = provider.select_landmarks(rows, relevance, m, strategy=strategy)
        assert positions == list(range(6))


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_effective_sketch_columns_clamps_to_n(use_numpy):
    instance = random_instance(n=8, seed=1)
    kernel = sketched_kernel(instance, use_numpy, sketch_columns=50)
    assert kernel.effective_sketch_columns == 8
    derived = sketched_kernel(random_instance(n=5, seed=2), use_numpy)
    # The derived default max(16, isqrt(n)) exceeds tiny n: clamped too.
    assert derived.effective_sketch_columns == 5


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_bounds_are_exact_when_every_row_is_a_landmark(use_numpy):
    instance = random_instance(n=7, k=3, seed=11)
    kernel = sketched_kernel(instance, use_numpy, sketch_columns=7)
    sketch = kernel.sketch()
    assert sketch.columns == 7
    assert sketch.landmark_positions == tuple(range(7))
    dense = ScoringKernel(instance, use_numpy=use_numpy)
    for i in range(7):
        for j in range(7):
            true = dense.distance_between(i, j)
            assert sketch.lower_bound(i, j) == pytest.approx(true, abs=1e-12)
            assert sketch.upper_bound(i, j) == pytest.approx(true, abs=1e-12)


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("n", [1, 2, 3])
def test_tiny_snapshots_sketch_without_error(use_numpy, n):
    instance = random_instance(n=n, k=min(n, 2), seed=n)
    kernel = sketched_kernel(instance, use_numpy)
    sketch = kernel.sketch()
    assert sketch.columns == n
    if n >= 2:
        dense = ScoringKernel(instance, use_numpy=use_numpy)
        assert sketch.lower_bound(0, 1) == pytest.approx(
            dense.distance_between(0, 1), abs=1e-12
        )


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_oversized_sketch_collapses_the_certificate(use_numpy):
    """With every row a landmark the surrogate bounds ARE the
    distances, so the approximation certificate collapses onto the
    exact value: lower == value == upper."""
    from repro.algorithms.sketched import select_sketched_marginal_max_sum

    instance = random_instance(n=9, k=3, seed=5)
    kernel = sketched_kernel(instance, use_numpy, sketch_columns=9)
    selection = select_sketched_marginal_max_sum(
        kernel, instance.objective, instance.k
    )
    assert len(selection.rows) == 3
    certificate = selection.certificate
    assert certificate.lower == pytest.approx(selection.value, rel=1e-12)
    assert certificate.upper == pytest.approx(selection.value, rel=1e-12)


def test_constructor_still_rejects_degenerate_sketches():
    """m < 2 stays an error unless m == n (the clamp's exact case)."""
    with pytest.raises(StorageError):
        SketchedStorage(5, [0], [[0.0]] * 5, use_numpy=False, strategy="uniform")
    # m == n == 1 is the legitimate single-row corner.
    single = SketchedStorage(1, [0], [[0.0]], use_numpy=False, strategy="uniform")
    assert single.columns == 1
