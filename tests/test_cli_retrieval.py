"""CLI surfaces of the retrieval front end: ``repro retrieve`` and
``repro diversify --query-text``."""

import json

import pytest

from repro.__main__ import main


@pytest.fixture
def docs_json(tmp_path):
    data = {
        "relations": [
            {
                "name": "docs",
                "attributes": ["doc", "text", "score"],
                "rows": [
                    [1, "solar panels efficiency", 9],
                    [2, "solar wind grid", 7],
                    [3, "wind turbine offshore", 6],
                    [4, "battery storage grid", 4],
                    [5, "hydro dam reservoir", 8],
                    [6, "solar farm desert", 5],
                ],
            }
        ]
    }
    path = tmp_path / "docs.json"
    path.write_text(json.dumps(data))
    return str(path)


QUERY = "Q(D, T, S) :- docs(D, T, S)"


class TestRetrieveCommand:
    def test_human_output(self, docs_json, capsys):
        code = main(
            [
                "retrieve",
                "--db", docs_json,
                "--query", QUERY,
                "--query-text", "solar",
                "--relevance-attr", "S",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bm25" in out
        assert "solar" in out

    def test_json_payload(self, docs_json, capsys):
        code = main(
            [
                "retrieve",
                "--db", docs_json,
                "--query", QUERY,
                "--query-text", "solar grid",
                "--pool-size", "3",
                "--retriever", "bm25",
                "--relevance-attr", "S",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["retriever"] == "bm25"
        assert payload["pool"] <= 3
        assert payload["corpus_size"] == 6
        assert len(payload["results"]) == payload["pool"]
        assert all("score" in item for item in payload["results"])
        # Every returned document mentions a query term.
        assert all(
            "solar" in item["T"] or "grid" in item["T"]
            for item in payload["results"]
        )

    def test_no_match_is_an_empty_cut(self, docs_json, capsys):
        code = main(
            [
                "retrieve",
                "--db", docs_json,
                "--query", QUERY,
                "--query-text", "zzz unseen tokens",
                "--retriever", "bm25",
                "--relevance-attr", "S",
                "--json",
            ]
        )
        # grep-style exit: 1 signals "no candidates matched".
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["pool"] == 0
        assert payload["results"] == []

    def test_bad_retriever_for_this_corpus(self, docs_json, capsys):
        # Scalar-callable objective: no feature space, so explicit ANN
        # has nothing to search.
        code = main(
            [
                "retrieve",
                "--db", docs_json,
                "--query", QUERY,
                "--query-text", "solar",
                "--retriever", "ann",
                "--relevance-attr", "S",
            ]
        )
        assert code == 2


class TestDiversifyQueryText:
    def test_pooled_diversify(self, docs_json, capsys):
        code = main(
            [
                "diversify",
                "--db", docs_json,
                "--query", QUERY,
                "-k", "2",
                "--objective", "max-sum",
                "--relevance-attr", "S",
                "--query-text", "solar",
                "--pool-size", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "retrieval:" in out
        assert "F = " in out

    def test_json_carries_the_retrieval_block(self, docs_json, capsys):
        code = main(
            [
                "diversify",
                "--db", docs_json,
                "--query", QUERY,
                "-k", "2",
                "--objective", "max-sum",
                "--relevance-attr", "S",
                "--query-text", "solar grid",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["retrieval"]["pool"] >= 2
        assert payload["retrieval"]["corpus_size"] == 6

    def test_pool_size_without_query_text_is_rejected(self, docs_json, capsys):
        code = main(
            [
                "diversify",
                "--db", docs_json,
                "--query", QUERY,
                "-k", "2",
                "--relevance-attr", "S",
                "--pool-size", "3",
            ]
        )
        assert code == 2
        assert "query-text" in capsys.readouterr().err
