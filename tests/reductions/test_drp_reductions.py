"""Theorem 6.1 / 6.2 DRP reductions, including the reproduction findings
about the paper's F_MS and F_mono constructions."""

import random

import pytest

from repro.core.drp import drp_brute_force
from repro.logic.cnf import ThreeSatInstance, cnf, random_3cnf
from repro.logic.qbf import A, E, evaluate_qbf, q3sat
from repro.logic.sat import is_satisfiable
from repro.reductions import q3sat_drp, sat_drp


def random_q3sat(num_vars, num_clauses, seed):
    rng = random.Random(seed)
    matrix = random_3cnf(num_vars, num_clauses, rng)
    quantifiers = [rng.choice([E, A]) for _ in range(num_vars)]
    return q3sat(quantifiers, matrix)


def random_narrow_3sat(seed, num_clauses=3, num_vars=3):
    """Random 3SAT with 1–2 literals per clause: keeps the DRP search
    space (C(16l+2, l+1) in the worst case) small enough to enumerate."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        size = rng.choice((1, 2))
        variables = rng.sample(range(1, num_vars + 1), size)
        clauses.append(tuple(v if rng.random() < 0.5 else -v for v in variables))
    return ThreeSatInstance(cnf(*clauses, num_vars=num_vars))


class TestTheorem61Construction:
    def test_relation_includes_all_assignments_with_flags(self):
        inst = ThreeSatInstance(cnf([1, 2, 3]))
        relation = sat_drp.weakened_clause_relation(inst)
        # Clause 1: 2^4 assignments (3 vars + z); plus 2 z̄ tuples.
        assert len(relation) == 16 + 2

    def test_top_set_is_candidate(self):
        inst = ThreeSatInstance(cnf([1, 2, 3], [-1, -2, 3]))
        reduced = sat_drp.reduce_3sat_to_drp_max_min(inst)
        assert reduced.instance.is_candidate_set(reduced.subset)

    def test_k_is_l_plus_one(self):
        inst = ThreeSatInstance(cnf([1, 2, 3], [-1, -2, 3]))
        reduced = sat_drp.reduce_3sat_to_drp_max_sum(inst)
        assert reduced.instance.k == 3


class TestTheorem61Equivalence:
    @pytest.mark.parametrize(
        "formula",
        [
            cnf([1, 2, 3]),
            cnf([1], [-1]),
            cnf([1], [-1, 2], [-2]),
            cnf([1, 2, 3], [-1, -2, -3]),
        ],
    )
    @pytest.mark.parametrize("which", ["max-sum", "max-min"])
    def test_fixed_instances(self, formula, which):
        assert sat_drp.verify_reduction(ThreeSatInstance(formula), which)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_instances(self, seed):
        inst = random_narrow_3sat(seed)
        assert sat_drp.verify_reduction(inst, "max-sum")
        assert sat_drp.verify_reduction(inst, "max-min")

    def test_one_full_width_instance(self):
        inst = ThreeSatInstance(cnf([1, 2, 3], [-1, -2, -3]))
        assert sat_drp.verify_reduction(inst, "max-sum")
        assert sat_drp.verify_reduction(inst, "max-min")


class TestTheorem61Finding:
    """The paper's F_MS construction fails on sparse-overlap unsat chains
    (a near-clique scores (l+1)l − 2 > l(l−1) = F_MS(U))."""

    def test_gap_instance_is_unsat(self):
        gap = sat_drp.find_paper_gap_instance()
        assert not is_satisfiable(gap.formula)

    def test_paper_construction_answers_wrongly_on_gap(self):
        gap = sat_drp.find_paper_gap_instance()
        reduced = sat_drp.reduce_3sat_to_drp_max_sum_paper(gap)
        # Paper claims: unsat ⇒ rank(U) ≤ 1.  The near-clique refutes it.
        assert not drp_brute_force(reduced.instance, reduced.subset, reduced.r)

    def test_repaired_construction_correct_on_gap(self):
        gap = sat_drp.find_paper_gap_instance()
        assert sat_drp.verify_reduction(gap, "max-sum")

    def test_paper_construction_correct_on_satisfiable_instances(self):
        """On satisfiable formulas the paper's F_MS construction answers
        correctly (the full clique exists and outranks U regardless of
        near-cliques)."""
        inst = ThreeSatInstance(cnf([1, 2, 3], [-1, 2, 3]))
        reduced = sat_drp.reduce_3sat_to_drp_max_sum_paper(inst)
        assert not drp_brute_force(reduced.instance, reduced.subset, reduced.r)


class TestTheorem62:
    @pytest.mark.parametrize("seed", range(6))
    def test_repaired_reduction_random(self, seed):
        inst = random_q3sat(3, 3, 300 + seed)
        assert q3sat_drp.verify_reduction(inst)

    def test_repaired_reduction_true_false(self):
        assert q3sat_drp.verify_reduction(q3sat([E], cnf([1])))
        assert q3sat_drp.verify_reduction(q3sat([A], cnf([1])))

    def test_paper_forward_direction_holds(self):
        for seed in range(6):
            inst = random_q3sat(3, 3, 400 + seed)
            assert q3sat_drp.verify_paper_construction_forward(inst)

    def test_paper_gap_instance(self):
        gap = q3sat_drp.find_paper_gap_instance()
        assert not evaluate_qbf(gap.formula)
        # The paper's construction wrongly reports rank ≤ 1 on a false ϕ.
        assert q3sat_drp.paper_construction_answer(gap)
        # The repaired construction answers correctly.
        assert q3sat_drp.verify_reduction(gap)

    def test_reference_tuple_is_candidate(self):
        inst = random_q3sat(3, 2, 500)
        reduced = q3sat_drp.reduce_q3sat_to_drp(inst)
        assert reduced.instance.is_candidate_set(reduced.subset)
        assert reduced.instance.answer_count == 27  # {0,1,2}^3
