"""Theorem 5.1 reductions (3SAT → QRD), verified against the SAT solver."""

import random

import pytest

from repro.logic.cnf import ThreeSatInstance, cnf, random_3cnf
from repro.reductions import sat_qrd
from repro.relational.ast import QueryLanguage

SAT_INSTANCES = [
    cnf([1, 2, 3]),
    cnf([1, 2, 3], [-1, -2, 3], [1, -2, -3]),
    cnf([1, 2], [-1, 2], [1, -2]),
]
UNSAT_INSTANCES = [
    cnf([1], [-1]),
    cnf([1], [-1, 2], [-2]),
    cnf([1, 2], [1, -2], [-1, 2], [-1, -2]),
]


class TestConstruction:
    def test_relation_has_at_most_8_tuples_per_clause(self):
        inst = ThreeSatInstance(cnf([1, 2, 3], [-1, -2, -3]))
        relation = sat_qrd.clause_assignment_relation(inst)
        assert len(relation) <= 16
        cids = {row["cid"] for row in relation.rows}
        assert cids == {1, 2}

    def test_only_satisfying_assignments_included(self):
        inst = ThreeSatInstance(cnf([1, 2, 3]))
        relation = sat_qrd.clause_assignment_relation(inst)
        assert len(relation) == 7  # all but (0,0,0)

    def test_query_is_identity(self):
        reduced = sat_qrd.reduce_3sat_to_qrd_max_sum(
            ThreeSatInstance(cnf([1, 2, 3]))
        )
        assert reduced.instance.query.is_identity()
        assert reduced.instance.query.language is QueryLanguage.IDENTITY

    def test_lambda_is_one(self):
        reduced = sat_qrd.reduce_3sat_to_qrd_max_sum(
            ThreeSatInstance(cnf([1, 2, 3]))
        )
        assert reduced.instance.objective.lam == 1.0

    def test_bound_is_l_times_l_minus_one(self):
        inst = ThreeSatInstance(cnf([1, 2, 3], [-1, 2, 3], [1, -2, 3]))
        reduced = sat_qrd.reduce_3sat_to_qrd_max_sum(inst)
        assert reduced.bound == 6.0
        assert reduced.instance.k == 3

    def test_distance_requires_distinct_clause_and_consistency(self):
        inst = ThreeSatInstance(cnf([1, 2, 3], [-1, 2, 3]))
        relation = sat_qrd.clause_assignment_relation(inst)
        distance = sat_qrd.consistency_distance()
        rows = list(relation.rows)
        for left in rows:
            assert distance(left, left) == 0.0
            for right in rows:
                if left["cid"] == right["cid"] and left != right:
                    assert distance(left, right) == 0.0


class TestEquivalence:
    @pytest.mark.parametrize("formula", SAT_INSTANCES + UNSAT_INSTANCES)
    @pytest.mark.parametrize(
        "which", ["max-sum", "max-min", "lambda0-max-sum", "lambda0-max-min"]
    )
    def test_fixed_instances(self, formula, which):
        assert sat_qrd.verify_reduction(ThreeSatInstance(formula), which)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        formula = random_3cnf(4, 3 + seed % 2, rng)
        inst = ThreeSatInstance(formula)
        assert sat_qrd.verify_reduction(inst, "max-sum")
        assert sat_qrd.verify_reduction(inst, "max-min")

    @pytest.mark.parametrize("seed", range(4))
    def test_random_lambda0(self, seed):
        rng = random.Random(100 + seed)
        formula = random_3cnf(4, 5, rng)
        inst = ThreeSatInstance(formula)
        assert sat_qrd.verify_reduction(inst, "lambda0-max-sum")
        assert sat_qrd.verify_reduction(inst, "lambda0-max-min")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            sat_qrd.verify_reduction(ThreeSatInstance(cnf([1, 2, 3])), "nope")
