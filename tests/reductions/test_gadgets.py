"""Tests for the Figure 5 gadget relations and the CNF→CQ circuit."""

import pytest

from repro.logic.cnf import cnf
from repro.reductions.gadgets import (
    R01,
    R_AND,
    R_NOT,
    R_OR,
    and_relation,
    assignment_atoms,
    boolean_domain_relation,
    encode_cnf_circuit,
    encode_cnf_with_switch,
    gadget_database,
    not_relation,
    or_relation,
)
from repro.relational.ast import And, Exists
from repro.relational.evaluate import evaluate
from repro.relational.queries import Query


class TestFigure5Relations:
    def test_boolean_domain(self):
        assert {r.values for r in boolean_domain_relation().rows} == {(0,), (1,)}

    def test_or_truth_table(self):
        rows = {r.values for r in or_relation().rows}
        assert rows == {
            (a or b, a, b) for a in (0, 1) for b in (0, 1)
        } == {(0, 0, 0), (1, 0, 1), (1, 1, 0), (1, 1, 1)}

    def test_and_truth_table(self):
        rows = {r.values for r in and_relation().rows}
        assert rows == {(a and b, a, b) for a in (0, 1) for b in (0, 1)}

    def test_not_truth_table(self):
        assert {r.values for r in not_relation().rows} == {(0, 1), (1, 0)}

    def test_gadget_database(self):
        db = gadget_database()
        for name in (R01.name, R_OR.name, R_AND.name, R_NOT.name):
            assert db.has_relation(name)


def circuit_query(formula, num_vars, with_switch=False):
    """Build Q(vars..., [z,] out) evaluating the circuit on all inputs."""
    var_names = {i: f"v{i}" for i in range(1, num_vars + 1)}
    names = [var_names[i] for i in range(1, num_vars + 1)]
    head = list(names)
    atoms = assignment_atoms(names)
    if with_switch:
        atoms += assignment_atoms(["z"])
        head.append("z")
        encoding = encode_cnf_with_switch(formula, var_names, switch_var="z")
    else:
        encoding = encode_cnf_circuit(formula, var_names)
    body = And(atoms + encoding.atoms)
    inner = [v for v in encoding.auxiliary_vars if v != encoding.output_var]
    if inner:
        body = Exists(inner, body)
    head.append(encoding.output_var)
    return Query(head, body, name="circuit")


class TestCircuitEncoding:
    @pytest.mark.parametrize(
        "clauses",
        [
            ([(1, 2)]),
            ([(1,), (-1, 2)]),
            ([(1, 2, 3), (-1, -2, 3), (2, -3)]),
            ([(-1,)]),
        ],
    )
    def test_circuit_computes_truth_value(self, clauses):
        formula = cnf(*clauses)
        n = formula.num_vars
        query = circuit_query(formula, n)
        db = gadget_database()
        rows = {r.values for r in evaluate(query, db).rows}
        # Exactly one output per input assignment, equal to ψ's value.
        assert len(rows) == 2**n
        for values in rows:
            assignment = {i + 1: bool(values[i]) for i in range(n)}
            assert values[-1] == int(formula.satisfied_by(assignment))

    def test_switch_construction_semantics(self):
        # ϕ' = (ψ ∨ z) ∧ z̄: true exactly on ψ's models with z = 0.
        formula = cnf([1, 2], [-1])
        query = circuit_query(formula, 2, with_switch=True)
        db = gadget_database()
        rows = {r.values for r in evaluate(query, db).rows}
        assert len(rows) == 8
        for v1, v2, z, out in rows:
            expected = int(
                z == 0 and formula.satisfied_by({1: bool(v1), 2: bool(v2)})
            )
            assert out == expected

    def test_switch_always_falsifiable(self):
        formula = cnf([1, -1])  # tautology
        query = circuit_query(formula, 1, with_switch=True)
        rows = {r.values for r in evaluate(query, gadget_database()).rows}
        assert any(out == 0 for (_, _, out) in rows)  # z = 1 falsifies

    def test_empty_cnf_rejected(self):
        with pytest.raises(ValueError):
            encode_cnf_circuit(cnf(num_vars=1), {1: "v1"})
