"""#SSP / #SSPk / Lemma 7.6 / Theorem 7.5 tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.reductions import ssp
from repro.reductions.ssp import (
    SspInstance,
    SspkInstance,
    brute_force_sspk,
    count_ssp,
    count_sspk,
    count_sspk_via_rdc,
    lemma_7_6_reduction,
    verify_lemma_7_6,
    verify_turing_reduction,
)


class TestCounters:
    def test_count_ssp_basic(self):
        # Subsets of {3,5,2} summing to 5: {5}, {3,2} → 2.
        assert count_ssp(SspInstance((3, 5, 2), 5)) == 2

    def test_count_ssp_empty_subset(self):
        assert count_ssp(SspInstance((1, 2), 0)) == 1

    def test_count_ssp_zero_weights(self):
        # {0,0}: subsets summing to 0: {}, {0a}, {0b}, {0a,0b} → 4.
        assert count_ssp(SspInstance((0, 0), 0)) == 4

    def test_count_sspk_vs_brute_force(self):
        inst = SspkInstance((3, 5, 2, 7, 5, 1), 10, 3)
        assert count_sspk(inst) == brute_force_sspk(inst)

    def test_count_sspk_cardinality_matters(self):
        weights = (5, 5, 10)
        assert count_sspk(SspkInstance(weights, 10, 1)) == 1
        assert count_sspk(SspkInstance(weights, 10, 2)) == 1

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            SspInstance((-1,), 3)
        with pytest.raises(ValueError):
            SspkInstance((1,), -1, 1)

    @given(
        st.lists(st.integers(0, 12), min_size=0, max_size=8),
        st.integers(0, 30),
        st.integers(0, 8),
    )
    @settings(max_examples=60)
    def test_sspk_dp_matches_brute_force(self, weights, target, size):
        inst = SspkInstance(tuple(weights), target, size)
        assert count_sspk(inst) == brute_force_sspk(inst)

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=7), st.integers(0, 25))
    @settings(max_examples=50)
    def test_ssp_equals_sum_over_sizes(self, weights, target):
        inst = SspInstance(tuple(weights), target)
        by_size = sum(
            count_sspk(SspkInstance(tuple(weights), target, l))
            for l in range(len(weights) + 1)
        )
        assert count_ssp(inst) == by_size


class TestLemma76:
    def test_fixed_instances(self):
        assert verify_lemma_7_6(SspInstance((3, 5, 2, 7, 5), 10))
        assert verify_lemma_7_6(SspInstance((1, 1, 1), 2))
        assert verify_lemma_7_6(SspInstance((4,), 4))
        assert verify_lemma_7_6(SspInstance((4,), 5))

    def test_reduction_shape(self):
        reduced = lemma_7_6_reduction(SspInstance((3, 5), 8))
        assert len(reduced.weights) == 4
        assert reduced.size == 2

    def test_empty_w_rejected(self):
        with pytest.raises(ValueError):
            lemma_7_6_reduction(SspInstance((), 0))

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=6), st.integers(0, 20))
    @settings(max_examples=40)
    def test_parsimony_randomized(self, weights, target):
        assert verify_lemma_7_6(SspInstance(tuple(weights), target))


class TestTheorem75:
    @pytest.mark.parametrize("oracle", ["brute-force", "modular-dp"])
    def test_fixed_instances(self, oracle):
        for inst in (
            SspkInstance((3, 5, 2, 7, 5), 10, 2),
            SspkInstance((1, 2, 3, 4), 6, 2),
            SspkInstance((1, 1, 1, 1), 2, 2),
            SspkInstance((5,), 5, 1),
        ):
            assert verify_turing_reduction(inst, oracle=oracle)

    def test_size_zero(self):
        assert count_sspk_via_rdc(SspkInstance((1, 2), 0, 0)) == 1
        assert count_sspk_via_rdc(SspkInstance((1, 2), 3, 0)) == 0

    def test_size_exceeds_elements(self):
        assert count_sspk_via_rdc(SspkInstance((1, 2), 3, 5)) == 0

    @given(
        st.lists(st.integers(0, 8), min_size=1, max_size=6),
        st.integers(0, 20),
        st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_turing_reduction_randomized(self, weights, target, size):
        inst = SspkInstance(tuple(weights), target, size)
        assert verify_turing_reduction(inst)

    def test_composite_artifact(self):
        source = SspInstance((3, 5, 2), 5)
        reduced = ssp.reduce_ssp_to_rdc(source)
        from repro.core.rdc import rdc_brute_force

        at_d = rdc_brute_force(reduced.instance, reduced.bound)
        at_d1 = rdc_brute_force(reduced.instance, reduced.bound + 1)
        assert at_d - at_d1 == count_ssp(source)
