"""Theorem 7.1 / 7.2 counting reductions (parsimony checks)."""

import random

import pytest

from repro.core.rdc import rdc_brute_force
from repro.logic.cnf import cnf, random_3cnf
from repro.logic.counting import count_sigma1
from repro.logic.qbf import A, E, count_qbf
from repro.reductions import qbf_rdc, sigma1_rdc


def random_split_cnf(num_vars, num_clauses, seed):
    return random_3cnf(num_vars, num_clauses, random.Random(seed))


class TestSigma1Reductions:
    @pytest.mark.parametrize("which", ["max-sum", "max-min"])
    def test_fixed_instance(self, which):
        f = cnf([1, 3], [-1, 2, 4], [-2, -3], num_vars=4)
        assert sigma1_rdc.verify_reduction(f, [1, 2], [3, 4], which)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("which", ["max-sum", "max-min"])
    def test_random_instances(self, seed, which):
        f = random_split_cnf(4, 3, seed)
        assert sigma1_rdc.verify_reduction(f, [1, 2], [3, 4], which)

    def test_unsatisfiable_formula_counts_zero(self):
        f = cnf([3], [-3], num_vars=3)  # y-contradiction
        reduced = sigma1_rdc.reduce_sigma1_to_rdc_max_min(f, [1, 2], [3])
        assert rdc_brute_force(reduced.instance, reduced.bound) == 0
        assert count_sigma1(f, [1, 2], [3]) == 0

    def test_tautology_counts_all(self):
        f = cnf([1, -1], num_vars=2)  # X-tautology, Y free
        assert sigma1_rdc.verify_reduction(f, [1], [2], "max-min")
        assert count_sigma1(f, [1], [2]) == 2

    def test_reduction_is_cq(self):
        from repro.relational.ast import QueryLanguage

        f = cnf([1, 2], num_vars=2)
        reduced = sigma1_rdc.reduce_sigma1_to_rdc_max_sum(f, [1], [2])
        assert reduced.instance.query.language is QueryLanguage.CQ

    def test_lambda_zero_and_k(self):
        f = cnf([1, 2], num_vars=2)
        ms = sigma1_rdc.reduce_sigma1_to_rdc_max_sum(f, [1], [2])
        mm = sigma1_rdc.reduce_sigma1_to_rdc_max_min(f, [1], [2])
        assert ms.instance.objective.lam == 0.0 and ms.instance.k == 2
        assert mm.instance.objective.lam == 0.0 and mm.instance.k == 1


class TestQbfFOReductions:
    @pytest.mark.parametrize("max_min", [False, True])
    def test_fixed_instance(self, max_min):
        f = cnf([1, 3], [-3, 4, 2], [-1, -4], num_vars=4)
        y_prefix = [(A, 3), (E, 4)]
        assert qbf_rdc.verify_fo_reduction(f, [1, 2], y_prefix, max_min=max_min)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances(self, seed):
        f = random_split_cnf(4, 3, 600 + seed)
        y_prefix = [(A, 3), (E, 4)]
        assert qbf_rdc.verify_fo_reduction(f, [1, 2], y_prefix)

    def test_alternating_prefix(self):
        f = random_split_cnf(5, 4, 700)
        y_prefix = [(A, 3), (E, 4), (A, 5)]
        assert qbf_rdc.verify_fo_reduction(f, [1, 2], y_prefix)

    def test_query_is_fo(self):
        from repro.relational.ast import QueryLanguage

        f = cnf([1, 2], num_vars=2)
        reduced = qbf_rdc.reduce_qbf_to_rdc_fo(f, [1], [(A, 2)])
        assert reduced.instance.query.language is QueryLanguage.FO


class TestTheorem72:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances(self, seed):
        f = random_split_cnf(4, 3, 800 + seed)
        y_prefix = [(A, 3), (A, 4)]
        assert qbf_rdc.verify_mono_reduction(f, [1, 2], y_prefix)

    def test_alternating_y_prefix(self):
        f = random_split_cnf(4, 4, 900)
        y_prefix = [(A, 3), (E, 4)]
        assert qbf_rdc.verify_mono_reduction(f, [1, 2], y_prefix)

    def test_n_equals_one_padding(self):
        """The reproduction note: n = 1 breaks parsimony in the paper's
        analysis; padding with a dummy ∀ restores it."""
        f = cnf([1, 3], [-1, -3], num_vars=3)
        assert qbf_rdc.verify_mono_reduction(f, [1, 2], [(A, 3)])

    def test_prefix_must_start_with_forall(self):
        f = cnf([1, 2], num_vars=2)
        with pytest.raises(ValueError):
            qbf_rdc.reduce_qbf_to_rdc_mono(f, [1], [(E, 2)])

    def test_count_matches_reference(self):
        f = cnf([1, 3], [-2, 4], [3, 4], num_vars=4)
        y_prefix = [(A, 3), (E, 4)]
        reduced = qbf_rdc.reduce_qbf_to_rdc_mono(f, [1, 2], y_prefix)
        assert rdc_brute_force(reduced.instance, reduced.bound) == count_qbf(
            f, [1, 2], y_prefix
        )
