"""Tests for the Theorem 9.3 / Corollary 9.4 lower-bound construction."""

import random

import pytest

from repro.logic.cnf import ThreeSatInstance, cnf, random_3cnf
from repro.reductions import constraints_hardness as ch
from repro.relational.ast import QueryLanguage


SAT = [
    cnf([1, 2, 3]),
    cnf([1, 2, 3], [-1, -2, 3], [1, -2, -3]),
    cnf([1], [-2]),
]
UNSAT = [
    cnf([1], [-1]),
    cnf([1], [-1, 2], [-2]),
    cnf([1, 2], [1, -2], [-1, 2], [-1, -2]),
]


class TestConstruction:
    def test_relation_one_tuple_per_satisfying_literal(self):
        inst = ThreeSatInstance(cnf([1, -2, 3], [2, 2, 2]))
        relation = ch.literal_relation(inst)
        # Clause 1 has 3 distinct literals; clause 2 collapses to one.
        assert len(relation) == 4

    def test_sigma_is_fixed_and_small(self):
        sigma = ch.fixed_constraints()
        assert sigma.m == 2
        assert len(sigma) == 2

    def test_query_is_identity_and_lambda_zero(self):
        reduced = ch.reduce_3sat_to_constrained_qrd(ThreeSatInstance(cnf([1, 2, 3])))
        assert reduced.instance.query.language is QueryLanguage.IDENTITY
        assert reduced.instance.objective.lam == 0.0

    def test_consistency_constraint_semantics(self):
        sigma = ch.fixed_constraints()
        relation = ch.literal_relation(ThreeSatInstance(cnf([1, 2, 3], [-1, -2, -3])))
        rows = {(r["cid"], r["var"], r["val"]): r for r in relation.rows}
        consistent = [rows[(1, "x1", 1)], rows[(2, "x2", 0)]]
        conflicting = [rows[(1, "x1", 1)], rows[(2, "x1", 0)]]
        assert sigma.satisfied_by(consistent)
        assert not sigma.satisfied_by(conflicting)

    def test_distinct_clause_constraint_semantics(self):
        sigma = ch.fixed_constraints()
        relation = ch.literal_relation(ThreeSatInstance(cnf([1, 2, 3])))
        same_clause = [r for r in relation.rows][:2]
        assert not sigma.satisfied_by(same_clause)


class TestEquivalence:
    @pytest.mark.parametrize("formula", SAT + UNSAT)
    def test_fixed_instances(self, formula):
        assert ch.verify_reduction(ThreeSatInstance(formula))

    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        formula = random_3cnf(4, 4 + seed % 3, random.Random(seed))
        inst = ThreeSatInstance(formula)
        assert ch.verify_reduction(inst)

    @pytest.mark.parametrize("formula", SAT + UNSAT)
    def test_unconstrained_control_is_trivially_yes(self, formula):
        """Without Σ the PTIME algorithm answers yes whenever enough
        tuples exist — the tractable side of the Theorem 9.3 flip."""
        inst = ThreeSatInstance(formula)
        assert ch.unconstrained_control(inst)

    def test_flip_is_visible(self):
        """The same database answers differently with and without Σ on
        an unsatisfiable formula."""
        inst = ThreeSatInstance(cnf([1], [-1]))
        reduced = ch.reduce_3sat_to_constrained_qrd(inst)
        from repro.core.qrd import qrd_brute_force

        assert not qrd_brute_force(reduced.instance, reduced.bound)
        assert ch.unconstrained_control(inst)
