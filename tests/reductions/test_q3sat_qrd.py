"""Lemma 5.3 / Figure 2 / Theorem 5.2 tests."""

import random

import pytest

from repro.logic.cnf import cnf, random_3cnf
from repro.logic.qbf import A, E, evaluate_qbf, q3sat
from repro.reductions import q3sat_qrd
from repro.reductions.q3sat_qrd import (
    QuantifierDistance,
    figure2_instance,
    figure2_report,
    figure2_tuples,
    verify_lemma_5_3,
)


def random_q3sat(num_vars, num_clauses, seed):
    rng = random.Random(seed)
    matrix = random_3cnf(num_vars, num_clauses, rng)
    quantifiers = [rng.choice([E, A]) for _ in range(num_vars)]
    return q3sat(quantifiers, matrix)


class TestLemma53:
    def test_figure2_instance(self):
        assert verify_lemma_5_3(figure2_instance())

    @pytest.mark.parametrize("seed", range(10))
    def test_random_instances(self, seed):
        inst = random_q3sat(4, 3, seed)
        assert verify_lemma_5_3(inst)

    @pytest.mark.parametrize("seed", range(4))
    def test_larger_instances(self, seed):
        inst = random_q3sat(6, 5, 100 + seed)
        assert verify_lemma_5_3(inst)

    def test_distance_symmetric_and_zero_diagonal(self):
        inst = figure2_instance()
        gadget = QuantifierDistance.for_q3sat(inst)
        tuples = figure2_tuples()
        for t in tuples:
            assert gadget.value(t, t) == 0.0
            for s in tuples:
                assert gadget.value(t, s) == gadget.value(s, t)

    def test_distance_depends_only_on_prefix(self):
        """For first-difference level < m−1 the value ignores suffixes."""
        inst = random_q3sat(4, 3, 77)
        gadget = QuantifierDistance.for_q3sat(inst)
        t1, s1 = (1, 0, 1, 1), (1, 1, 0, 0)  # differ first at index 1
        t2, s2 = (1, 0, 0, 0), (1, 1, 1, 1)
        assert gadget.value(t1, s1) == gadget.value(t2, s2)


class TestFigure2:
    def test_paper_values_level3(self):
        """The l = 3 row of Figure 2, exactly as printed."""
        gadget = QuantifierDistance.for_q3sat(figure2_instance())
        t = figure2_tuples()
        expected = {
            (0, 1): 0.0,   # δ(t1,t2)
            (2, 3): 1.0,   # δ(t3,t4)
            (4, 5): 1.0,
            (6, 7): 1.0,
            (8, 9): 0.0,
            (10, 11): 1.0,
            (12, 13): 0.0,
            (14, 15): 1.0,
        }
        for (i, j), value in expected.items():
            assert gadget.value(t[i], t[j]) == value, (i, j)

    def test_paper_values_inner_levels(self):
        gadget = QuantifierDistance.for_q3sat(figure2_instance())
        t = figure2_tuples()
        # l = 2 (P3 = ∃): all four canonical pairs are 1.
        for i, j in [(0, 2), (4, 6), (8, 10), (12, 14)]:
            assert gadget.value(t[i], t[j]) == 1.0
        # l = 1 (P2 = ∀) and l = 0 (P1 = ∃).
        assert gadget.value(t[0], t[4]) == 1.0
        assert gadget.value(t[8], t[12]) == 1.0
        assert gadget.value(t[0], t[8]) == 1.0

    def test_matrix_values_match_figure(self):
        gadget = QuantifierDistance.for_q3sat(figure2_instance())
        t = figure2_tuples()
        # Figure annotations: ψ[t1]=1, ψ[t2]=0, ψ[t3]=1, ψ[t4]=1 …
        psi = [1, 0, 1, 1, 1, 1, 1, 1, 1, 0, 1, 1, 0, 0, 1, 1]
        for i, expected in enumerate(psi):
            assert gadget.matrix_true(t[i]) == bool(expected), i

    def test_report_renders(self):
        report = figure2_report()
        assert "l = 3" in report and "l = 0" in report
        assert "δ(t1, t2) = 0" in report


class TestTheorem52:
    @pytest.mark.parametrize("seed", range(8))
    def test_reduction_equivalence_random(self, seed):
        inst = random_q3sat(4, 3, 200 + seed)
        assert q3sat_qrd.verify_reduction(inst)

    def test_true_and_false_instances(self):
        true_inst = q3sat([E], cnf([1]))
        false_inst = q3sat([A], cnf([1]))
        assert evaluate_qbf(true_inst.formula)
        assert not evaluate_qbf(false_inst.formula)
        assert q3sat_qrd.verify_reduction(true_inst)
        assert q3sat_qrd.verify_reduction(false_inst)

    def test_reduction_parameters(self):
        reduced = q3sat_qrd.reduce_q3sat_to_qrd_mono(figure2_instance())
        assert reduced.instance.k == 1
        assert reduced.bound == 1.0
        assert reduced.instance.objective.lam == 1.0
        assert reduced.instance.answer_count == 16

    def test_unsatisfiable_matrix_edge_case(self):
        """ψ ≡ false makes δ ≡ 0; QRD must answer no, matching ϕ false."""
        inst = q3sat([E, A], cnf([1], [-1], [2, -2]))
        assert q3sat_qrd.verify_reduction(inst)
