"""Theorem 5.1/6.1 FO lower bounds via the membership problem."""

import pytest

from repro.reductions import membership
from repro.relational import builder as qb
from repro.relational.ast import And, Forall, Not, RelationAtom
from repro.relational.evaluate import evaluate, membership as member_of
from repro.relational.queries import Query
from repro.relational.schema import Database, Relation, RelationSchema, SchemaError
from repro.relational.terms import Var


@pytest.fixture
def db():
    node = RelationSchema("node", ("id",))
    edge = RelationSchema("edge", ("src", "dst"))
    return Database(
        [
            Relation(node, [(1,), (2,), (3,), (4,)]),
            Relation(edge, [(1, 2), (2, 3), (1, 3)]),
        ]
    )


@pytest.fixture
def sink_query():
    """FO query: nodes with no outgoing edge (3 and 4 here)."""
    x, w = Var("x"), Var("w")
    body = And(
        (
            RelationAtom("node", (x,)),
            Forall(["w"], Not(RelationAtom("edge", (x, w)))),
        )
    )
    return Query(["x"], body, name="sink")


class TestQRDReduction:
    def test_member_targets(self, db, sink_query):
        answers = {r.values for r in evaluate(sink_query, db).rows}
        assert answers == {(3,), (4,)}
        for target in [(1,), (2,), (3,), (4,)]:
            assert membership.verify_qrd_reduction(sink_query, db, target)
            assert membership.verify_qrd_reduction(
                sink_query, db, target, max_min=True
            )

    def test_reduction_adds_boolean_relation(self, db, sink_query):
        reduced = membership.reduce_membership_to_qrd(sink_query, db, (3,))
        assert reduced.instance.db.has_relation("R01")

    def test_r01_collision_rejected(self, sink_query):
        r01 = RelationSchema("R01", ("X",))
        node = RelationSchema("node", ("id",))
        db = Database([Relation(r01, [(1,)]), Relation(node, [(1,)])])
        with pytest.raises(SchemaError):
            membership.reduce_membership_to_qrd(sink_query, db, (1,))

    def test_arity_mismatch_rejected(self, db, sink_query):
        with pytest.raises(ValueError):
            membership.reduce_membership_to_qrd(sink_query, db, (1, 2))


class TestDRPReduction:
    def test_both_outcomes(self, db, sink_query):
        # 3 is a sink (member), 1 is not.
        assert member_of(sink_query, db, (3,))
        assert not member_of(sink_query, db, (1,))
        for target in [(1,), (2,), (3,), (4,)]:
            assert membership.verify_drp_reduction(sink_query, db, target)
            assert membership.verify_drp_reduction(
                sink_query, db, target, max_min=True
            )

    def test_subset_always_candidate(self, db, sink_query):
        reduced = membership.reduce_membership_to_drp(sink_query, db, (1,))
        assert reduced.instance.is_candidate_set(reduced.subset)

    def test_cq_query_membership_also_works(self, db):
        q = qb.query(["x"], qb.exists(["y"], qb.atom("edge", "?x", "?y")))
        for target in [(1,), (3,)]:
            assert membership.verify_qrd_reduction(q, db, target)
            assert membership.verify_drp_reduction(q, db, target)
