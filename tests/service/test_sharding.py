"""Per-tenant engine sharding (:mod:`repro.service.core`).

``engine_shards`` consistent-hashes each request's **corpus key** —
the materialization identity without k/λ/algorithm — onto one of N
engines per tenant, so kernel LRUs partition instead of thrashing one
cache while every variant of one corpus still shares a shard (and so
its cached kernel).  These tests pin the contract: deterministic
placement, corpus variants co-locating (with ``shard_rebalance``
counting the ones a full-key hash would have scattered), sweep
requests landing on the same shard as plain requests over their corpus
(kernel sharing), delta invalidation reaching every live shard, and
``stats()`` aggregating counters across shards while keeping the
historical payload shape at ``engine_shards=1``.
"""

import asyncio

import pytest

from repro.api import DiversifyRequest, EngineConfig
from repro.service.core import (
    DiversificationService,
    ServiceConfig,
    ServiceError,
)


def run(coro):
    return asyncio.run(coro)


def make_service(**overrides):
    defaults = dict(engine=EngineConfig(), result_ttl=30.0)
    defaults.update(overrides)
    return DiversificationService(ServiceConfig(**defaults))


def request_for(n, k=5):
    return DiversifyRequest(workload="synthetic", params={"n": n}, k=k)


def requests_on_distinct_shards(service, count=2, k=5):
    """Synthetic requests guaranteed to land on ``count`` different
    shards (placement is a deterministic hash, so probe for them)."""
    picked, seen = [], set()
    for n in range(20, 200):
        request = request_for(n, k=k)
        shard = service.shard_of(request.corpus_key())
        if shard not in seen:
            seen.add(shard)
            picked.append(request)
            if len(picked) == count:
                return picked
    raise AssertionError(f"could not find {count} distinct shards")


class TestPlacement:
    def test_config_rejects_bad_shards(self):
        with pytest.raises(ServiceError, match="engine_shards"):
            ServiceConfig(engine=EngineConfig(), engine_shards=0)

    def test_shard_of_is_deterministic_and_bounded(self):
        service = make_service(engine_shards=4)
        request = request_for(40)
        first = service.shard_of(request.key())
        assert 0 <= first < 4
        assert all(
            service.shard_of(request.key()) == first for _ in range(5)
        )

    def test_single_shard_config_pins_everything_to_zero(self):
        service = make_service()  # engine_shards=1 default
        assert all(
            service.shard_of(request_for(n).key()) == 0 for n in range(20, 60)
        )

    def test_shard_engines_are_created_lazily(self):
        service = make_service(engine_shards=4)
        assert len(service._engine_shards) == 0
        requests = requests_on_distinct_shards(service, count=2)

        async def scenario():
            for request in requests:
                await service.diversify(request)

        run(scenario())
        live = {
            service.shard_of(r.corpus_key()) for r in requests if
            service.shard_of(r.corpus_key()) != 0
        }
        assert len(service._engine_shards) == len(live)


class TestCorpusAffinity:
    def test_variants_of_one_corpus_share_a_shard_and_kernel(self):
        """k/λ/algorithm variants differ in ``key()`` but not
        ``corpus_key()`` — all land on one shard and reuse one kernel."""
        service = make_service(engine_shards=4)
        variants = [
            DiversifyRequest(workload="synthetic", params={"n": 40}, k=k,
                             lam=lam, algorithm=algorithm)
            for k, lam, algorithm in [
                (3, 0.3, None),
                (5, 0.5, None),
                (7, 0.7, "greedy_max_sum"),
            ]
        ]
        corpus_shards = {service.shard_for(r) for r in variants}
        assert len(corpus_shards) == 1
        shard = corpus_shards.pop()

        async def scenario():
            for request in variants:
                await service.diversify(request)

        run(scenario())
        engine = service.engine_for("default", shard)
        assert engine.stats.misses == 1  # one corpus, one kernel
        assert engine.stats.hits >= len(variants) - 1

    def test_shard_rebalance_counts_full_key_divergence(self):
        """Whenever a full-key hash disagrees with corpus placement the
        service counts the request it kept on-corpus."""
        service = make_service(engine_shards=4)
        diverged = 0
        for k in range(3, 40):
            request = request_for(40, k=k)
            full = service.shard_of(request.key())
            assert service.shard_for(request) == service.shard_of(
                request.corpus_key()
            )
            if full != service.shard_of(request.corpus_key()):
                diverged += 1
        assert diverged > 0  # the probe range must exercise divergence
        assert service.shard_rebalance == diverged
        stats = service.stats()
        assert stats["requests"]["shard_rebalance"] == diverged

    def test_single_shard_never_counts_rebalance(self):
        service = make_service()  # engine_shards=1
        for k in range(3, 10):
            assert service.shard_for(request_for(40, k=k)) == 0
        assert service.shard_rebalance == 0


class TestKernelPartitioning:
    def test_requests_partition_across_shard_engines(self):
        service = make_service(engine_shards=4)
        requests = requests_on_distinct_shards(service, count=2)

        async def scenario():
            for request in requests:
                await service.diversify(request)

        run(scenario())
        for request in requests:
            shard = service.shard_of(request.corpus_key())
            engine = service.engine_for(request.tenant, shard)
            assert engine.stats.misses == 1  # exactly its own kernel
        total = sum(
            e.stats.misses for e in service._tenant_engines("default")
        )
        assert total == len(requests)

    def test_sweep_lands_on_the_plain_request_shard(self):
        """A sweep must shard on the corpus key (not the sweep key) so
        it reuses the kernel a plain request over the corpus built."""
        service = make_service(engine_shards=4)
        request = request_for(40)
        shard = service.shard_of(request.corpus_key())

        async def scenario():
            await service.diversify(request)
            return await service.sweep(request, ks=[3, 5], lams=[0.3, 0.7])

        payload = run(scenario())
        assert len(payload["cells"]) == 4
        engine = service.engine_for(request.tenant, shard)
        assert engine.stats.misses == 1  # one corpus, one kernel
        assert engine.stats.hits >= 1  # sweep cells reused it
        for other in range(4):
            if other == shard:
                continue
            if other == 0:
                assert service.engine_for("default").stats.lookups == (
                    0 if shard != 0 else engine.stats.lookups
                )


class TestDeltaAcrossShards:
    def test_delta_reaches_every_live_shard(self):
        service = make_service(engine_shards=3)
        stream = DiversifyRequest(workload="streaming", k=5)
        shard = service.shard_of(stream.corpus_key())

        async def scenario():
            await service.diversify(stream)
            # populate another shard so the exit-stack path holds >1 lock
            for request in requests_on_distinct_shards(service, count=2):
                await service.diversify(request)
            return await service.delta("streaming", events=2, k=5)

        payload = run(scenario())
        assert payload["events"]
        assert "selection" in payload
        # the repair ran on the stream's shard engine
        engine = service.engine_for("default", shard)
        kernel = payload["kernel"]
        assert kernel["patches"] + kernel["stale_rebuilds"] >= 0
        assert engine.stats.lookups >= 1

    def test_delta_with_no_live_shards_still_works(self):
        service = make_service(engine_shards=3)
        payload = run(service.delta("streaming", events=1))
        assert payload["events"]


class TestStats:
    def test_single_shard_payload_keeps_historical_shape(self):
        service = make_service()
        run(service.diversify(request_for(40)))
        tenant = service.stats()["tenants"]["default"]
        assert tenant["shards"] == 1
        assert tenant["kernel_cache"]["misses"] == 1
        assert tenant["kernel_cache"]["hit_rate"] == 0.0
        assert set(tenant["storage"]) == {
            "evictions",
            "spills",
            "spill_loads",
            "rebuilds",
            "mmap_reads",
            "bytes_mapped",
            "resident_tiles",
            "resident_bytes",
        }

    def test_counters_aggregate_across_shards(self):
        service = make_service(engine_shards=4)
        requests = requests_on_distinct_shards(service, count=2)

        async def scenario():
            for request in requests:
                await service.diversify(request)
                await service.diversify(request)  # cached; no new kernel

        run(scenario())
        tenant = service.stats()["tenants"]["default"]
        assert tenant["shards"] == len(service._tenant_engines("default"))
        assert tenant["kernel_cache"]["misses"] == len(requests)
        assert tenant["cached_kernels"] == len(requests)

    def test_spill_counters_surface_in_stats(self):
        service = make_service(
            engine=EngineConfig(
                storage="tiled", block_size=8, max_resident_tiles=2
            ),
            engine_shards=2,
        )
        run(service.diversify(request_for(48)))
        storage = service.stats()["tenants"]["default"]["storage"]
        assert storage["resident_tiles"] <= 2
        assert storage["evictions"] > 0
        assert storage["spills"] == 0  # no spill_dir configured
