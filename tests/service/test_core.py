"""Tests for the async serving core (:mod:`repro.service.core`).

No pytest-asyncio in the toolchain: every async scenario runs under
``asyncio.run`` inside a sync test.  Coalescing assertions rely on the
service registering the in-flight future *before* its first await, so
followers gathered in the same loop tick observe it deterministically.
"""

import asyncio

import pytest

from repro.api import ApiError, DiversifyRequest, EngineConfig
from repro.service.cache import TTLCache
from repro.service.core import (
    DiversificationService,
    QuotaError,
    ServiceConfig,
    ServiceError,
)
from repro.service.registry import RegistryError
from repro.service.telemetry import LatencyHistogram


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def run(coro):
    return asyncio.run(coro)


def make_service(**overrides):
    defaults = dict(engine=EngineConfig(), result_ttl=30.0)
    defaults.update(overrides)
    return DiversificationService(ServiceConfig(**defaults))


REQ = DiversifyRequest(workload="synthetic", params={"n": 40}, k=5)


class TestCoalescing:
    def test_eight_identical_requests_one_build(self):
        service = make_service()

        async def scenario():
            return await asyncio.gather(*[service.diversify(REQ) for _ in range(8)])

        responses = run(scenario())
        assert len({r.value for r in responses}) == 1
        assert sorted(r.cache for r in responses).count("coalesced") == 7
        assert sorted(r.cache for r in responses).count("computed") == 1
        # exactly one kernel build and one selector run
        assert service.computed == 1
        assert service.coalesced == 7
        engine = service.engine_for(REQ.tenant)
        assert engine.stats.misses == 1
        assert engine.stats.hits == 0

    def test_distinct_requests_do_not_coalesce(self):
        service = make_service()

        async def scenario():
            return await asyncio.gather(
                service.diversify(REQ),
                service.diversify(DiversifyRequest(workload="synthetic",
                                                   params={"n": 40}, k=6)),
            )

        run(scenario())
        assert service.computed == 2
        assert service.coalesced == 0
        # ...but the two k-variants share one kernel
        assert service.engine_for("default").stats.misses == 1
        assert service.engine_for("default").stats.hits == 1

    def test_coalesce_disabled(self):
        service = make_service(coalesce=False)

        async def scenario():
            return await asyncio.gather(*[service.diversify(REQ) for _ in range(4)])

        responses = run(scenario())
        assert service.coalesced == 0
        # the first compute populates the TTL cache; later requests in the
        # gather may hit it or recompute, but none coalesce
        assert all(r.cache in ("computed", "cached") for r in responses)

    def test_leader_failure_propagates_to_followers(self):
        service = make_service()
        bad = DiversifyRequest(
            workload="synthetic", params={"objective": "bogus"}, k=2
        )

        async def scenario():
            return await asyncio.gather(
                *[service.diversify(bad) for _ in range(3)],
                return_exceptions=True,
            )

        results = run(scenario())
        assert all(isinstance(r, Exception) for r in results)
        # nothing cached, nothing left in flight
        assert len(service.results) == 0
        assert len(service._inflight) == 0


class TestTTLCache:
    def test_expiry(self):
        clock = FakeClock()
        cache = TTLCache(ttl=10.0, clock=clock)
        cache.put("a", 1)
        assert cache.get("a") == 1
        clock.advance(9.999)
        assert cache.get("a") == 1
        clock.advance(0.001)
        assert cache.get("a") is None
        assert cache.stats.expired == 1
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = TTLCache(ttl=100.0, max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_disabled_when_ttl_zero(self):
        cache = TTLCache(ttl=0.0)
        assert not cache.enabled
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_invalidate_predicate(self):
        cache = TTLCache(ttl=100.0)
        cache.put(("w", 1), "x")
        cache.put(("w", 2), "y")
        cache.put(("v", 1), "z")
        assert cache.invalidate(lambda key: key[0] == "w") == 2
        assert cache.get(("v", 1)) == "z"
        assert cache.stats.invalidations == 2

    def test_service_ttl_expiry_recomputes(self):
        clock = FakeClock()
        service = DiversificationService(
            ServiceConfig(result_ttl=10.0), clock=clock
        )

        async def scenario():
            first = await service.diversify(REQ)
            clock.advance(1.0)
            warm = await service.diversify(REQ)
            clock.advance(15.0)
            expired = await service.diversify(REQ)
            return first, warm, expired

        first, warm, expired = run(scenario())
        assert first.cache == "computed"
        assert warm.cache == "cached"
        assert expired.cache == "computed"
        assert service.results.stats.expired == 1
        assert first.value == warm.value == expired.value
        # the recompute after expiry still reuses the kernel
        assert service.engine_for("default").stats.misses == 1
        assert service.engine_for("default").stats.hits == 1


class TestQuotas:
    def test_max_k_rejected(self):
        service = make_service(max_k=10)
        with pytest.raises(QuotaError, match="max_k"):
            run(service.diversify(DiversifyRequest(workload="synthetic", k=11)))
        assert service.quota_rejections == 1

    def test_max_concurrent_rejected(self):
        service = make_service(max_concurrent=2, result_ttl=0.0, coalesce=False)
        reqs = [
            DiversifyRequest(workload="synthetic", params={"n": 40}, k=2 + i)
            for i in range(4)
        ]

        async def scenario():
            return await asyncio.gather(
                *[service.diversify(r) for r in reqs], return_exceptions=True
            )

        results = run(scenario())
        rejected = [r for r in results if isinstance(r, QuotaError)]
        served = [r for r in results if not isinstance(r, Exception)]
        assert len(rejected) == 2
        assert len(served) == 2
        assert service.quota_rejections == 2

    def test_coalesced_followers_are_quota_free(self):
        service = make_service(max_concurrent=1)

        async def scenario():
            return await asyncio.gather(*[service.diversify(REQ) for _ in range(6)])

        responses = run(scenario())
        assert all(not isinstance(r, Exception) for r in responses)
        assert service.quota_rejections == 0

    def test_max_answer_set(self):
        service = make_service(max_answer_set=10)
        with pytest.raises(QuotaError, match="max_answer_set"):
            run(service.diversify(REQ))  # synthetic n=40 > 10


class TestTenants:
    def test_tenants_get_separate_engines(self):
        service = make_service()

        async def scenario():
            await service.diversify(REQ)
            await service.diversify(
                DiversifyRequest(workload="synthetic", params={"n": 40}, k=5,
                                 tenant="other")
            )

        run(scenario())
        assert service.engine_for("default") is not service.engine_for("other")
        assert service.engine_for("default").stats.misses == 1
        assert service.engine_for("other").stats.misses == 1
        stats = service.stats()
        assert set(stats["tenants"]) == {"default", "other"}


class TestSweep:
    def test_sweep_shares_one_kernel(self):
        service = make_service()

        async def scenario():
            return await service.sweep(REQ, ks=[2, 3], lams=[0.2, 0.8])

        payload = run(scenario())
        assert len(payload["cells"]) == 4
        assert payload["cache"] == "computed"
        assert {(c["k"], c["lam"]) for c in payload["cells"]} == {
            (2, 0.2), (2, 0.8), (3, 0.2), (3, 0.8)
        }
        assert service.engine_for("default").stats.misses == 1

    def test_sweep_coalesces(self):
        service = make_service()

        async def scenario():
            return await asyncio.gather(
                *[service.sweep(REQ, ks=[2, 3], lams=[0.5]) for _ in range(3)]
            )

        payloads = run(scenario())
        assert sorted(p["cache"] for p in payloads) == [
            "coalesced", "coalesced", "computed"
        ]
        assert service.computed == 1

    def test_sweep_cell_limit(self):
        service = make_service(max_sweep_cells=4)
        with pytest.raises(ServiceError, match="max_sweep_cells"):
            run(service.sweep(REQ, ks=[1, 2, 3], lams=[0.1, 0.5]))


class TestDelta:
    def test_delta_patches_and_repairs(self):
        service = make_service()
        req = DiversifyRequest(workload="streaming", k=5)

        async def scenario():
            first = await service.diversify(req)
            moved = await service.delta("streaming", events=2, k=5)
            return first, moved

        first, moved = run(scenario())
        assert first.cache == "computed"
        assert len(moved["events"]) == 2
        assert moved["selection"]["feasible"] is True
        assert "repair" in moved or moved["selection"]["algorithm"] is not None
        # the stale kernel was patched, not rebuilt
        assert moved["kernel"]["patches"] == 1
        assert moved["kernel"]["stale_rebuilds"] == 0

    def test_delta_invalidates_cached_results(self):
        service = make_service()
        req = DiversifyRequest(workload="streaming", k=5)

        async def scenario():
            await service.diversify(req)
            warm = await service.diversify(req)
            await service.delta("streaming", events=1, k=5)
            after = await service.diversify(req)
            return warm, after

        warm, after = run(scenario())
        assert warm.cache == "cached"
        # the delta evicted the stale entry: this is a fresh computation
        assert after.cache == "computed"
        assert service.results.stats.invalidations >= 1

    def test_delta_on_static_workload_rejected(self):
        service = make_service()
        with pytest.raises(ServiceError, match="update feed"):
            run(service.delta("synthetic", events=1))

    def test_delta_without_k_only_steps(self):
        service = make_service()
        payload = run(service.delta("streaming", events=3))
        assert len(payload["events"]) == 3
        assert "selection" not in payload


class TestApproxAdmission:
    """``approx_over``: answer sets beyond the threshold run on the
    per-tenant sketched engine and report their certificate; everything
    else (and every delta repair) stays exact."""

    BIG = DiversifyRequest(workload="synthetic", params={"n": 400}, k=5)

    def make_approx_service(self, **overrides):
        return make_service(max_answer_set=100, approx_over=150, **overrides)

    def test_small_requests_stay_exact(self):
        service = self.make_approx_service()
        response = run(service.diversify(REQ))  # n=40
        assert response.certificate is None
        assert service.served_exact == 1
        assert service.served_approx == 0

    def test_midsize_requests_still_hit_quota(self):
        service = self.make_approx_service()
        with pytest.raises(QuotaError, match="max_answer_set"):
            run(service.diversify(
                DiversifyRequest(workload="synthetic", params={"n": 120}, k=5)
            ))

    def test_large_requests_route_to_sketched_engine(self):
        service = self.make_approx_service()
        response = run(service.diversify(self.BIG))
        assert response.feasible
        cert = response.certificate
        assert cert is not None
        assert cert["lower"] <= response.value <= cert["upper"] + 1e-9
        assert service.served_approx == 1
        stats = service.stats()
        assert stats["requests"]["served_approx"] == 1
        assert stats["requests"]["served_exact"] == 0
        assert stats["tenants"]["default"]["approx_cached_kernels"] == 1
        assert stats["config"]["approx_over"] == 150

    def test_approx_admission_disabled_by_default(self):
        service = make_service(max_answer_set=100)
        with pytest.raises(QuotaError, match="max_answer_set"):
            run(service.diversify(self.BIG))

    def test_relevance_only_admission_is_exact(self):
        """The sketched engine only approximates λ > 0 solves; a λ = 0
        request over the threshold is admitted but served exactly."""
        service = self.make_approx_service()
        request = DiversifyRequest(
            workload="synthetic", params={"n": 400}, k=5, lam=0.0
        )
        response = run(service.diversify(request))
        assert response.certificate is None
        assert service.served_exact == 1
        assert service.served_approx == 0

    def test_sweep_cells_carry_certificates(self):
        service = self.make_approx_service(max_sweep_cells=16)
        request = DiversifyRequest(workload="synthetic", params={"n": 400})
        payload = run(service.sweep(request, ks=[3, 5], lams=[0.3, 0.7]))
        cells = payload["cells"]
        assert len(cells) == 4
        assert all(cell["certificate"] is not None for cell in cells)
        assert service.served_approx == 4


class TestErrorsAndStats:
    def test_unknown_workload(self):
        service = make_service()
        with pytest.raises(RegistryError, match="unknown workload"):
            run(service.diversify(DiversifyRequest(workload="nope")))

    def test_unknown_params(self):
        service = make_service()
        with pytest.raises(ApiError, match="unknown parameter"):
            run(service.diversify(
                DiversifyRequest(workload="synthetic", params={"zap": 1})
            ))

    def test_stats_shape(self):
        service = make_service()

        async def scenario():
            await asyncio.gather(*[service.diversify(REQ) for _ in range(3)])
            await service.diversify(REQ)

        run(scenario())
        stats = service.stats()
        assert stats["requests"]["computed"] == 1
        assert stats["requests"]["coalesced"] == 2
        assert stats["requests"]["inflight"] == 0
        assert stats["result_cache"]["hits"] == 1
        assert stats["result_cache"]["stores"] == 1
        diversify = stats["latency"]["diversify"]
        assert diversify["count"] == 4
        assert diversify["p50_ms"] is not None
        assert diversify["p50_ms"] <= diversify["p99_ms"]
        tenant = stats["tenants"]["default"]
        assert tenant["kernel_cache"]["misses"] == 1
        assert tenant["cached_kernels"] == 1
        assert stats["config"]["coalesce"] is True

    def test_healthz(self):
        service = make_service()
        payload = service.healthz()
        assert payload["status"] == "ok"
        assert "synthetic" in payload["workloads"]


class TestLatencyHistogram:
    def test_nearest_rank_percentiles(self):
        histogram = LatencyHistogram(window=100)
        for ms in range(1, 101):  # 1..100 ms
            histogram.record(ms / 1000.0)
        assert histogram.percentile(50) == pytest.approx(50.0)
        assert histogram.percentile(95) == pytest.approx(95.0)
        assert histogram.percentile(99) == pytest.approx(99.0)
        assert histogram.percentile(100) == pytest.approx(100.0)
        assert histogram.mean_ms == pytest.approx(50.5)

    def test_window_bounds_memory(self):
        histogram = LatencyHistogram(window=10)
        for _ in range(1000):
            histogram.record(0.001)
        assert len(histogram._samples_ms) == 10
        assert histogram.count == 1000

    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(50) is None
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["p50_ms"] is None
