"""The retrieval front end through the serving layer.

Request routing (``query_text`` → pool → kernel), cache provenance,
pool-aware quota admission, per-tenant index caching with delta
invalidation, and the ``retrieve`` telemetry endpoint.
"""

import asyncio

import pytest

from repro.api import DiversifyRequest, EngineConfig
from repro.service.core import (
    DiversificationService,
    QuotaError,
    ServiceConfig,
)
from repro.workloads import corpus

CORPUS_PARAMS = {"num_docs": 400}
QUERY = corpus.generate(num_docs=400).query_text(0)


def run(coro):
    return asyncio.run(coro)


def make_service(**overrides):
    defaults = dict(engine=EngineConfig(), result_ttl=30.0)
    defaults.update(overrides)
    return DiversificationService(ServiceConfig(**defaults))


def retrieval_request(**overrides):
    fields = dict(
        workload="corpus",
        params=CORPUS_PARAMS,
        k=5,
        algorithm="greedy_max_sum",
        query_text=QUERY,
        pool_size=50,
    )
    fields.update(overrides)
    return DiversifyRequest(**fields)


class TestRouting:
    def test_query_text_requests_carry_a_retrieval_block(self):
        service = make_service()
        response = run(service.diversify(retrieval_request()))
        assert response.feasible
        assert response.cache == "computed"
        assert response.retrieval is not None
        assert response.retrieval["retriever"] == "hybrid"
        assert response.retrieval["pool"] <= 50
        assert response.retrieval["corpus_size"] == 400
        assert len(response.rows) == 5

    def test_plain_requests_stay_retrieval_free(self):
        service = make_service()
        response = run(
            service.diversify(retrieval_request(query_text=None, pool_size=None))
        )
        assert response.feasible
        assert response.retrieval is None
        engine = service.engine_for("default")
        assert engine.cached_retrievers == 0

    def test_pool_and_plain_solves_differ_only_by_the_cut(self):
        """The pooled solve diversifies a subset: its value is that of
        running the engine on the pool, not an approximation knob."""
        service = make_service()

        async def scenario():
            pooled = await service.diversify(retrieval_request())
            plain = await service.diversify(
                retrieval_request(query_text=None, pool_size=None)
            )
            return pooled, plain

        pooled, plain = run(scenario())
        assert pooled.feasible and plain.feasible
        assert pooled.value <= plain.value + 1e-9  # subset can't beat the full set


class TestCacheProvenance:
    def test_repeat_requests_hit_the_result_cache(self):
        service = make_service()

        async def scenario():
            first = await service.diversify(retrieval_request())
            second = await service.diversify(retrieval_request())
            return first, second

        first, second = run(scenario())
        assert first.cache == "computed"
        assert second.cache == "cached"
        assert second.value == first.value
        assert second.retrieval == first.retrieval
        # One index, one pool build: the TTL hit never re-retrieved.
        engine = service.engine_for("default")
        assert engine.retrieval_stats["indexes_built"] == 1
        assert engine.retrieval_stats["pool_misses"] == 1

    def test_distinct_queries_build_distinct_pools(self):
        service = make_service()
        documents = corpus.generate(num_docs=400)

        async def scenario():
            await service.diversify(retrieval_request())
            await service.diversify(
                retrieval_request(query_text=documents.query_text(3))
            )

        run(scenario())
        engine = service.engine_for("default")
        assert engine.retrieval_stats["pool_misses"] == 2
        assert engine.retrieval_stats["indexes_built"] == 1  # index shared


class TestQuota:
    def test_quota_assessed_against_the_pool_not_the_corpus(self):
        """max_answer_set below the corpus but above the pool: plain
        requests bounce, retrieval requests are admitted — the kernel
        only ever sees pool-sized n."""
        service = make_service(max_answer_set=100)
        with pytest.raises(QuotaError):
            run(service.diversify(retrieval_request(query_text=None, pool_size=None)))
        response = run(service.diversify(retrieval_request()))
        assert response.feasible
        assert service.quota_rejections == 1

    def test_quota_still_bounds_oversized_pools(self):
        service = make_service(max_answer_set=100)
        with pytest.raises(QuotaError):
            run(service.diversify(retrieval_request(pool_size=200)))


class TestTelemetryAndStats:
    def test_retrieve_latency_is_recorded(self):
        service = make_service()
        run(service.diversify(retrieval_request()))
        latency = service.stats()["latency"]
        assert "retrieve" in latency
        assert "diversify" in latency

    def test_stats_exposes_the_retrieval_block(self):
        service = make_service()
        run(service.diversify(retrieval_request()))
        block = service.stats()["tenants"]["default"]["retrieval"]
        assert block["cached_indexes"] == 1
        assert block["indexes_built"] == 1
        assert block["pool_misses"] == 1
        assert block["invalidations"] == 0


class TestDeltaInvalidation:
    def test_delta_drops_the_retrieval_index(self):
        service = make_service()
        params = {"num_docs": 60}

        async def scenario():
            handle = service.registry.handle("streaming", params)
            from repro.retrieval import row_text

            query = row_text(handle.base_instance().answers()[0])
            first = await service.diversify(
                DiversifyRequest(
                    workload="streaming",
                    params=params,
                    k=4,
                    algorithm="greedy_max_sum",
                    query_text=query,
                    pool_size=20,
                )
            )
            invalidated = await service.delta("streaming", params, events=2)
            # Nothing live any more: a second delta has nothing to drop.
            clean = await service.delta("streaming", params, events=1)
            return first, invalidated, clean

        first, invalidated, clean = run(scenario())
        assert first.retrieval is not None
        assert invalidated["retrieval_invalidated"] is True
        assert clean["retrieval_invalidated"] is False
        engine = service.engine_for("default")
        assert engine.retrieval_stats["invalidations"] == 1
        assert engine.cached_retrievers == 0
