"""Tests for the stdlib HTTP adapter (:mod:`repro.service.http`).

Boots a real server on an OS-assigned port inside each scenario's event
loop and drives it with a raw ``asyncio.open_connection`` client — the
same stdlib-only stack the CI smoke job uses.
"""

import asyncio
import json

from repro.service.core import DiversificationService, ServiceConfig
from repro.service.http import ServiceServer


async def http(port, method, path, payload=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(payload).encode() if payload is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        "Host: test\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    ).encode()
    writer.write(head + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ")[1])
    return status, json.loads(body_blob)


def scenario(coro_func, **config_overrides):
    """Boot a fresh service+server, run the scenario, tear down."""

    async def main():
        service = DiversificationService(ServiceConfig(**config_overrides))
        server = ServiceServer(service, port=0)
        await server.start()
        try:
            return await coro_func(service, server.port)
        finally:
            await server.stop()

    return asyncio.run(main())


DIVERSIFY = {"workload": "synthetic", "params": {"n": 40}, "k": 5}


class TestRoutes:
    def test_healthz(self):
        async def go(service, port):
            return await http(port, "GET", "/healthz")

        status, payload = scenario(go)
        assert status == 200
        assert payload["status"] == "ok"
        assert "synthetic" in payload["workloads"]

    def test_diversify(self):
        async def go(service, port):
            return await http(port, "POST", "/diversify", DIVERSIFY)

        status, payload = scenario(go)
        assert status == 200
        assert payload["feasible"] is True
        assert len(payload["rows"]) == 5
        assert len(payload["indices"]) == 5
        assert payload["cache"] == "computed"
        assert payload["elapsed_ms"] is not None

    def test_concurrent_duplicates_coalesce(self):
        async def go(service, port):
            results = await asyncio.gather(
                *[http(port, "POST", "/diversify", DIVERSIFY) for _ in range(8)]
            )
            _, stats = await http(port, "GET", "/stats")
            return results, stats, service

        results, stats, service = scenario(go)
        assert all(status == 200 for status, _ in results)
        assert len({json.dumps(body["value"]) for _, body in results}) == 1
        # over real sockets a request may land after the leader finished
        # (TTL hit rather than coalesce), but the engine must have built
        # exactly one kernel and run exactly one selection
        assert stats["requests"]["computed"] == 1
        provenance = [body["cache"] for _, body in results]
        assert provenance.count("computed") == 1
        assert all(p in ("computed", "coalesced", "cached") for p in provenance)
        assert stats["requests"]["coalesced"] + stats["result_cache"]["hits"] == 7
        assert stats["tenants"]["default"]["kernel_cache"]["misses"] == 1

    def test_sweep(self):
        async def go(service, port):
            return await http(
                port, "POST", "/sweep",
                {**DIVERSIFY, "ks": [2, 3], "lams": [0.2, 0.8]},
            )

        status, payload = scenario(go)
        assert status == 200
        assert len(payload["cells"]) == 4
        assert all(cell["feasible"] for cell in payload["cells"])

    def test_delta(self):
        async def go(service, port):
            first = await http(
                port, "POST", "/diversify", {"workload": "streaming", "k": 5}
            )
            moved = await http(
                port, "POST", "/delta",
                {"workload": "streaming", "events": 2, "k": 5},
            )
            return first, moved

        (s1, body1), (s2, body2) = scenario(go)
        assert s1 == 200 and s2 == 200
        assert len(body2["events"]) == 2
        assert body2["selection"]["feasible"] is True
        assert body2["kernel"]["patches"] == 1

    def test_stats_latency_sections(self):
        async def go(service, port):
            await http(port, "POST", "/diversify", DIVERSIFY)
            return await http(port, "GET", "/stats")

        status, stats = scenario(go)
        assert status == 200
        assert stats["latency"]["diversify"]["count"] == 1
        assert stats["latency"]["diversify"]["p95_ms"] is not None
        assert stats["config"]["result_ttl"] == 30.0


class TestErrorMapping:
    def test_unknown_route_404(self):
        async def go(service, port):
            return await http(port, "GET", "/nope")

        status, payload = scenario(go)
        assert status == 404
        assert "error" in payload

    def test_unknown_workload_404(self):
        async def go(service, port):
            return await http(port, "POST", "/diversify", {"workload": "nope"})

        status, payload = scenario(go)
        assert status == 404
        assert "unknown workload" in payload["error"]

    def test_bad_request_400(self):
        async def go(service, port):
            return (
                await http(port, "POST", "/diversify", {"workload": "synthetic",
                                                        "zap": 1}),
                await http(port, "POST", "/diversify", {"workload": "synthetic",
                                                        "k": "three"}),
                await http(port, "POST", "/delta", {"workload": "synthetic",
                                                    "events": 1}),
            )

        (s1, _), (s2, _), (s3, body3) = scenario(go)
        assert s1 == 400
        assert s2 == 400
        assert s3 == 400  # static workload has no update feed
        assert "update feed" in body3["error"]

    def test_method_not_allowed_405(self):
        async def go(service, port):
            return (
                await http(port, "GET", "/diversify"),
                await http(port, "POST", "/healthz", {}),
            )

        (s1, _), (s2, _) = scenario(go)
        assert s1 == 405
        assert s2 == 405

    def test_quota_429(self):
        async def go(service, port):
            return await http(
                port, "POST", "/diversify", {"workload": "synthetic", "k": 9999}
            )

        status, payload = scenario(go, max_k=100)
        assert status == 429
        assert "max_k" in payload["error"]

    def test_malformed_json_400(self):
        async def go(service, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            body = b"{not json"
            writer.write(
                (
                    "POST /diversify HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return int(raw.split(b" ")[1])

        assert scenario(go) == 400
