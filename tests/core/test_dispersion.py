"""Tests for the facility-dispersion correspondence (Section 3.2)."""

import pytest

from repro.algorithms.exact import exhaustive_best
from repro.core.dispersion import (
    DispersionError,
    DispersionProblem,
    from_instance,
    greedy_max_sum_dispersion,
    to_instance,
)
from repro.core.objectives import ObjectiveKind
from repro.workloads.synthetic import random_instance


def small_problem(maximin=False):
    weights = (
        (0.0, 3.0, 1.0, 4.0),
        (3.0, 0.0, 2.0, 1.0),
        (1.0, 2.0, 0.0, 5.0),
        (4.0, 1.0, 5.0, 0.0),
    )
    return DispersionProblem(weights, select=2, maximin=maximin)


class TestDispersionProblem:
    def test_value_max_sum(self):
        problem = small_problem()
        assert problem.value((0, 3)) == 4.0
        assert problem.value((2, 3)) == 5.0

    def test_value_max_min(self):
        problem = DispersionProblem(small_problem().weights, 3, maximin=True)
        assert problem.value((0, 1, 3)) == 1.0

    def test_solve_max_sum(self):
        value, chosen = small_problem().solve()
        assert value == 5.0 and set(chosen) == {2, 3}

    def test_solve_max_min(self):
        problem = DispersionProblem(small_problem().weights, 2, maximin=True)
        value, chosen = problem.solve()
        assert value == 5.0 and set(chosen) == {2, 3}

    def test_asymmetric_rejected(self):
        weights = ((0.0, 1.0), (2.0, 0.0))
        with pytest.raises(DispersionError, match="symmetric"):
            DispersionProblem(weights, 1)

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(DispersionError, match="diagonal"):
            DispersionProblem(((1.0,),), 1)

    def test_bad_select_rejected(self):
        with pytest.raises(DispersionError):
            DispersionProblem(((0.0,),), 2)


class TestCorrespondence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("lam", [0.0, 0.5, 1.0])
    def test_max_sum_argmax_coincides(self, seed, lam):
        """argmax F_MS == argmax of the folded dispersion problem."""
        instance = random_instance(
            n=8, k=3, kind=ObjectiveKind.MAX_SUM, lam=lam, seed=seed
        )
        problem = from_instance(instance)
        dispersion_value, chosen = problem.solve()
        answers = instance.answers()
        chosen_rows = tuple(answers[i] for i in chosen)
        best = exhaustive_best(instance)
        assert best is not None
        # The folded weights make the values equal outright.
        assert instance.value(chosen_rows) == pytest.approx(best[0])
        assert dispersion_value == pytest.approx(best[0])

    @pytest.mark.parametrize("seed", range(3))
    def test_max_min_lambda1_coincides(self, seed):
        instance = random_instance(
            n=8, k=3, kind=ObjectiveKind.MAX_MIN, lam=1.0, seed=seed
        )
        problem = from_instance(instance)
        assert problem.maximin
        value, chosen = problem.solve()
        best = exhaustive_best(instance)
        assert value == pytest.approx(best[0])

    def test_max_min_mixed_lambda_rejected(self):
        instance = random_instance(n=6, k=2, kind=ObjectiveKind.MAX_MIN, lam=0.5)
        with pytest.raises(DispersionError, match="λ = 1"):
            from_instance(instance)

    def test_mono_rejected(self):
        instance = random_instance(n=6, k=2, kind=ObjectiveKind.MONO)
        with pytest.raises(DispersionError, match="F_mono"):
            from_instance(instance)

    def test_k1_rejected(self):
        instance = random_instance(n=6, k=1, kind=ObjectiveKind.MAX_SUM)
        with pytest.raises(DispersionError):
            from_instance(instance)


class TestEmbedding:
    @pytest.mark.parametrize("maximin", [False, True])
    def test_round_trip(self, maximin):
        problem = DispersionProblem(small_problem().weights, 2, maximin=maximin)
        instance = to_instance(problem)
        best = exhaustive_best(instance)
        value, _ = problem.solve()
        expected = value * (2 if not maximin else 1)
        # F_MS counts ordered pairs (×2); F_MM is the min itself.
        assert best[0] == pytest.approx(expected)


class TestGreedy:
    def test_two_approximation(self):
        problem = small_problem()
        greedy_value, _ = greedy_max_sum_dispersion(problem)
        optimal_value, _ = problem.solve()
        assert greedy_value >= optimal_value / 2

    def test_rejects_maximin(self):
        problem = DispersionProblem(small_problem().weights, 2, maximin=True)
        with pytest.raises(DispersionError):
            greedy_max_sum_dispersion(problem)

    def test_odd_selection(self):
        problem = DispersionProblem(small_problem().weights, 3)
        value, chosen = greedy_max_sum_dispersion(problem)
        assert len(chosen) == 3
        assert value == problem.value(chosen)
