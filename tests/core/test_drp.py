"""Tests for the DRP solvers: exact rank, the Theorem 6.4 top-r
machinery (heap-based and the paper's FindNext), and dispatch."""

import itertools

import pytest

from repro.core.constraints import ConstraintBuilder, ConstraintSet
from repro.core.drp import (
    DRPError,
    drp_brute_force,
    drp_decide,
    drp_modular,
    find_next_top_sets,
    rank_of,
    top_r_sets_modular,
)
from repro.core.objectives import ObjectiveKind
from repro.workloads.synthetic import random_instance
from tests.conftest import make_small_instance


def brute_force_top_values(instance, r):
    values = sorted(
        (instance.value(s) for s in instance.candidate_sets()), reverse=True
    )
    return values[:r]


class TestRank:
    def test_best_set_has_rank_one(self, small_instance):
        best = max(
            instance_sets := list(small_instance.candidate_sets()),
            key=small_instance.value,
        )
        assert rank_of(small_instance, best) == 1

    def test_rank_counts_strictly_better(self, small_instance):
        sets = list(small_instance.candidate_sets())
        target = min(sets, key=small_instance.value)
        value = small_instance.value(target)
        better = sum(1 for s in sets if small_instance.value(s) > value)
        assert rank_of(small_instance, target) == better + 1

    def test_rank_requires_candidate_set(self, small_instance):
        rows = small_instance.answers()[:2]
        with pytest.raises(DRPError):
            rank_of(small_instance, rows)

    def test_drp_brute_force_threshold(self, small_instance):
        sets = list(small_instance.candidate_sets())
        target = min(sets, key=small_instance.value)
        rank = rank_of(small_instance, target)
        assert drp_brute_force(small_instance, target, rank)
        assert not drp_brute_force(small_instance, target, rank - 1)

    def test_invalid_r_rejected(self, small_instance):
        rows = small_instance.answers()[:3]
        with pytest.raises(DRPError):
            drp_brute_force(small_instance, rows, 0)


class TestTopRModular:
    @pytest.fixture
    def mono_instance(self, small_db, items_schema):
        return make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO, lam=0.5
        )

    @pytest.mark.parametrize("r", [1, 2, 3, 5, 10, 20, 25])
    def test_heap_matches_brute_force(self, mono_instance, r):
        top = top_r_sets_modular(mono_instance, r)
        expected = brute_force_top_values(mono_instance, r)
        assert [v for v, _ in top] == pytest.approx(expected)

    def test_values_non_increasing(self, mono_instance):
        top = top_r_sets_modular(mono_instance, 10)
        values = [v for v, _ in top]
        assert values == sorted(values, reverse=True)

    def test_sets_are_distinct(self, mono_instance):
        top = top_r_sets_modular(mono_instance, 15)
        frozen = {frozenset(s) for _, s in top}
        assert len(frozen) == len(top)

    def test_fewer_sets_than_r(self, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO, k=6
        )
        top = top_r_sets_modular(instance, 5)
        assert len(top) == 1  # only C(6,6) = 1 candidate set

    def test_requires_modular(self, small_instance):
        with pytest.raises(DRPError):
            top_r_sets_modular(small_instance, 2)

    @pytest.mark.parametrize("r", [1, 2, 4, 8])
    def test_findnext_matches_heap(self, mono_instance, r):
        heap_values = [v for v, _ in top_r_sets_modular(mono_instance, r)]
        paper_values = [v for v, _ in find_next_top_sets(mono_instance, r)]
        assert paper_values == pytest.approx(heap_values)

    def test_findnext_on_random_instances(self):
        for seed in range(5):
            instance = random_instance(
                n=7, k=3, kind=ObjectiveKind.MONO, lam=0.6, seed=seed
            )
            heap_values = [v for v, _ in top_r_sets_modular(instance, 6)]
            paper_values = [v for v, _ in find_next_top_sets(instance, 6)]
            assert paper_values == pytest.approx(heap_values)


class TestModularDecision:
    @pytest.fixture
    def mono_instance(self, small_db, items_schema):
        return make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO, lam=0.5
        )

    @pytest.mark.parametrize("r", [1, 2, 3, 7])
    def test_agrees_with_brute_force(self, mono_instance, r):
        for subset in itertools.islice(mono_instance.candidate_sets(), 12):
            assert drp_modular(mono_instance, subset, r) == drp_brute_force(
                mono_instance, subset, r
            )

    def test_dispatch_auto(self, mono_instance):
        subset = next(iter(mono_instance.candidate_sets()))
        rank = rank_of(mono_instance, subset)
        assert drp_decide(mono_instance, subset, rank)
        if rank > 1:
            assert not drp_decide(mono_instance, subset, rank - 1)

    def test_constrained_falls_back(self, small_db, items_schema):
        sigma = ConstraintSet([ConstraintBuilder.forbids_value("id", 1)])
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO
        ).with_constraints(sigma)
        subset = next(iter(instance.candidate_sets()))
        rank = rank_of(instance, subset)
        assert drp_decide(instance, subset, rank)
        # Constrained rank only counts Σ-satisfying sets.
        unconstrained = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO
        )
        assert rank <= rank_of(unconstrained, subset)

    def test_unknown_method_rejected(self, small_instance):
        subset = next(iter(small_instance.candidate_sets()))
        with pytest.raises(ValueError):
            drp_decide(small_instance, subset, 1, method="magic")
