"""Tests for DiversificationInstance: answers, candidate/valid sets."""

import pytest

from repro.core.constraints import ConstraintBuilder, ConstraintSet
from repro.core.instance import InstanceError
from repro.core.objectives import ObjectiveKind
from tests.conftest import make_small_instance


class TestInstanceBasics:
    def test_k_validated(self, small_db, items_schema):
        with pytest.raises(InstanceError):
            make_small_instance(small_db, items_schema, k=0)

    def test_answers_cached_and_sorted(self, small_instance):
        first = small_instance.answers()
        second = small_instance.answers()
        assert first is second
        assert [r["id"] for r in first] == sorted(r["id"] for r in first)

    def test_answer_count(self, small_instance):
        assert small_instance.answer_count == 6

    def test_in_answers(self, small_instance):
        row = small_instance.answers()[0]
        assert small_instance.in_answers(row)

    def test_invalidate_cache(self, small_instance, small_db):
        small_instance.answers()
        small_db.insert("items", 7, "d", 5.0)
        small_instance.invalidate_cache()
        assert small_instance.answer_count == 7


class TestCandidateSets:
    def test_enumeration_count(self, small_instance):
        sets = list(small_instance.candidate_sets())
        assert len(sets) == 20  # C(6, 3)

    def test_is_candidate_set(self, small_instance):
        rows = small_instance.answers()[:3]
        assert small_instance.is_candidate_set(rows)
        assert not small_instance.is_candidate_set(rows[:2])
        assert not small_instance.is_candidate_set(list(rows[:2]) + [rows[0]])

    def test_candidate_sets_respect_constraints(self, small_instance):
        sigma = ConstraintSet([ConstraintBuilder.forbids_value("id", 1)])
        constrained = small_instance.with_constraints(sigma)
        sets = list(constrained.candidate_sets())
        assert len(sets) == 10  # C(5, 3)
        assert all(all(r["id"] != 1 for r in s) for s in sets)

    def test_is_valid_set(self, small_instance):
        rows = small_instance.answers()[:3]
        value = small_instance.value(rows)
        assert small_instance.is_valid_set(rows, value)
        assert not small_instance.is_valid_set(rows, value + 1.0)


class TestValue:
    def test_value_supplies_universe_for_mono(self, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO
        )
        rows = instance.answers()[:3]
        # Should not raise despite F_mono needing Q(D).
        assert instance.value(rows) > 0

    def test_item_score(self, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO
        )
        total = sum(instance.item_score(r) for r in instance.answers()[:3])
        assert instance.value(instance.answers()[:3]) == pytest.approx(total)


class TestCopies:
    def test_with_k_shares_cache(self, small_instance):
        small_instance.answers()
        clone = small_instance.with_k(2)
        assert clone.k == 2
        assert clone.answers() is small_instance.answers()

    def test_with_objective(self, small_instance):
        new_objective = small_instance.objective.with_lambda(1.0)
        clone = small_instance.with_objective(new_objective)
        assert clone.objective.lam == 1.0
        assert small_instance.objective.lam == 0.5
