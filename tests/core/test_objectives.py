"""Tests for F_MS, F_MM and F_mono (Section 3.2)."""

import pytest

from repro.core.functions import DistanceFunction, RelevanceFunction
from repro.core.objectives import Objective, ObjectiveError
from repro.relational.schema import RelationSchema, Row

SCHEMA = RelationSchema("r", ("id", "score"))


def row(i, score):
    return Row(SCHEMA, (i, score))


@pytest.fixture
def rows():
    return [row(1, 4.0), row(2, 2.0), row(3, 1.0)]


def rel():
    return RelevanceFunction.from_attribute("score")


def unit_distance():
    return DistanceFunction.constant(1.0)


class TestMaxSum:
    def test_formula(self, rows):
        # k=3, λ=0.5: (k−1)(1−λ)Σrel + λ·Σ_ordered δ = 2·0.5·7 + 0.5·6 = 10
        obj = Objective.max_sum(rel(), unit_distance(), lam=0.5)
        assert obj.value(rows) == pytest.approx(10.0)

    def test_lambda_zero_relevance_only(self, rows):
        obj = Objective.max_sum(rel(), unit_distance(), lam=0.0)
        assert obj.value(rows) == pytest.approx(2 * 7.0)
        assert obj.relevance_only and not obj.diversity_only

    def test_lambda_one_diversity_only(self, rows):
        obj = Objective.max_sum(rel(), unit_distance(), lam=1.0)
        assert obj.value(rows) == pytest.approx(6.0)
        assert obj.diversity_only

    def test_ordered_pair_convention(self):
        # l tuples with pairwise distance 1 must give l(l−1) at λ=1 —
        # the bound B of the Theorem 5.1 reduction.
        obj = Objective.max_sum(rel(), unit_distance(), lam=1.0)
        for l in (2, 3, 5):
            subset = [row(i, 1.0) for i in range(l)]
            assert obj.value(subset) == pytest.approx(l * (l - 1))

    def test_singleton(self):
        # k=1: the (k−1) factor kills the relevance term.
        obj = Objective.max_sum(rel(), unit_distance(), lam=0.0)
        assert obj.value([row(1, 5.0)]) == 0.0

    def test_modular_only_at_lambda_zero(self):
        assert Objective.max_sum(rel(), unit_distance(), lam=0.0).is_modular
        assert not Objective.max_sum(rel(), unit_distance(), lam=0.5).is_modular


class TestMaxMin:
    def test_formula(self, rows):
        obj = Objective.max_min(rel(), unit_distance(), lam=0.5)
        # (1−λ)·min rel + λ·min dis = 0.5·1 + 0.5·1
        assert obj.value(rows) == pytest.approx(1.0)

    def test_penalizes_single_bad_item(self, rows):
        obj = Objective.max_min(rel(), unit_distance(), lam=0.0)
        bad = rows + [row(9, 0.0)]
        assert obj.value(bad) == 0.0

    def test_singleton_diversity_convention(self):
        obj = Objective.max_min(rel(), unit_distance(), lam=1.0)
        assert obj.value([row(1, 5.0)]) == 0.0

    def test_empty_set(self):
        obj = Objective.max_min(rel(), unit_distance(), lam=0.5)
        assert obj.value([]) == 0.0

    def test_never_modular(self):
        assert not Objective.max_min(rel(), unit_distance(), lam=0.0).is_modular


class TestMono:
    def test_requires_universe(self, rows):
        obj = Objective.mono(rel(), unit_distance(), lam=0.5)
        with pytest.raises(ObjectiveError):
            obj.value(rows)

    def test_formula(self, rows):
        universe = rows + [row(4, 0.0)]
        obj = Objective.mono(rel(), unit_distance(), lam=0.5)
        # v(t) = 0.5·rel + 0.5·(3/3)=0.5·rel + 0.5 per tuple
        expected = sum(0.5 * r["score"] + 0.5 for r in rows)
        assert obj.value(rows, universe=universe) == pytest.approx(expected)

    def test_item_score_matches_value(self, rows):
        universe = rows
        obj = Objective.mono(rel(), unit_distance(), lam=0.7)
        total = sum(obj.item_score(r, None, universe) for r in rows)
        assert obj.value(rows, universe=universe) == pytest.approx(total)

    def test_singleton_universe_convention(self):
        obj = Objective.mono(rel(), unit_distance(), lam=1.0)
        only = [row(1, 5.0)]
        assert obj.value(only, universe=only) == 0.0

    def test_is_modular(self):
        assert Objective.mono(rel(), unit_distance(), lam=0.5).is_modular

    def test_item_score_lambda_zero_needs_no_universe(self):
        obj = Objective.mono(rel(), unit_distance(), lam=0.0)
        assert obj.item_score(row(1, 3.0), None, None) == 3.0


class TestObjectiveMisc:
    def test_lambda_bounds_validated(self):
        with pytest.raises(ObjectiveError):
            Objective.max_sum(rel(), unit_distance(), lam=1.5)
        with pytest.raises(ObjectiveError):
            Objective.max_sum(rel(), unit_distance(), lam=-0.1)

    def test_with_lambda(self):
        obj = Objective.max_sum(rel(), unit_distance(), lam=0.5)
        copy = obj.with_lambda(1.0)
        assert copy.lam == 1.0 and copy.kind is obj.kind
        assert obj.lam == 0.5  # original untouched

    def test_item_score_on_non_modular_raises(self):
        obj = Objective.max_sum(rel(), unit_distance(), lam=0.5)
        with pytest.raises(ObjectiveError):
            obj.item_score(row(1, 1.0), None, None)

    def test_value_monotone_in_items_for_max_sum(self, rows):
        obj = Objective.max_sum(rel(), unit_distance(), lam=0.5)
        assert obj.value(rows) >= obj.value(rows[:2])
