"""Tests for the class C_m of compatibility constraints (Section 9)."""

import pytest

from repro.core.constraints import (
    CompatibilityConstraint,
    ConstraintBuilder,
    ConstraintError,
    ConstraintSet,
    Predicate,
)
from repro.relational.schema import RelationSchema, Row
from repro.relational.terms import ComparisonOp

SCHEMA = RelationSchema("items", ("item", "kind", "id"))


def row(item, kind="t", id_=None):
    return Row(SCHEMA, (item, kind, id_ if id_ is not None else item))


class TestPredicate:
    def test_constant_predicate(self):
        p = Predicate(0, "item", ComparisonOp.EQ, const="a")
        assert p.holds((row("a"),))
        assert not p.holds((row("b"),))

    def test_tuple_tuple_predicate(self):
        p = Predicate(0, "kind", ComparisonOp.EQ, right_index=1, right_attr="kind")
        assert p.holds((row("a", "x"), row("b", "x")))
        assert not p.holds((row("a", "x"), row("b", "y")))

    def test_only_eq_ne_allowed(self):
        with pytest.raises(ConstraintError):
            Predicate(0, "item", ComparisonOp.LT, const=5)

    def test_missing_right_attr_rejected(self):
        with pytest.raises(ConstraintError):
            Predicate(0, "item", ComparisonOp.EQ, right_index=1)


class TestConstraintValidation:
    def test_chi_cannot_reference_existential(self):
        chi = (Predicate(1, "item", ComparisonOp.EQ, const="a"),)
        with pytest.raises(ConstraintError, match="existential"):
            CompatibilityConstraint(1, 1, chi, ())

    def test_xi_range_checked(self):
        xi = (Predicate(5, "item", ComparisonOp.EQ, const="a"),)
        with pytest.raises(ConstraintError, match="out of range"):
            CompatibilityConstraint(1, 1, (), xi)

    def test_zero_variables_rejected(self):
        with pytest.raises(ConstraintError):
            CompatibilityConstraint(0, 0, (), ())


class TestBuilderPatterns:
    def test_take_together(self):
        # ρ1: a and b selected → c required.
        c = ConstraintBuilder.take_together("item", ["a", "b"], "c")
        assert c.satisfied_by([row("a"), row("b"), row("c")])
        assert not c.satisfied_by([row("a"), row("b")])
        assert c.satisfied_by([row("a"), row("x")])  # trigger not met

    def test_prerequisite(self):
        # ρ2: CS450 → CS220 ∧ CS350.
        c = ConstraintBuilder.prerequisite("item", "CS450", ["CS220", "CS350"])
        assert c.satisfied_by([row("CS450"), row("CS220"), row("CS350")])
        assert not c.satisfied_by([row("CS450"), row("CS220")])
        assert c.satisfied_by([row("CS220")])  # head absent

    def test_conflict(self):
        c = ConstraintBuilder.conflict("item", "a", "b")
        assert not c.satisfied_by([row("a"), row("b")])
        assert c.satisfied_by([row("a"), row("c")])
        assert c.satisfied_by([row("b")])

    def test_at_most_two(self):
        # ρ3: at most two tuples with kind = "center".
        c = ConstraintBuilder.at_most_two("kind", "center", "id")
        two = [row("a", "center"), row("b", "center"), row("c", "guard")]
        three = [row("a", "center"), row("b", "center"), row("d", "center")]
        assert c.satisfied_by(two)
        assert not c.satisfied_by(three)

    def test_requires_value(self):
        c = ConstraintBuilder.requires_value("item", "card")
        assert c.satisfied_by([row("card"), row("x")])
        assert not c.satisfied_by([row("x")])

    def test_forbids_value(self):
        c = ConstraintBuilder.forbids_value("item", "bad")
        assert c.satisfied_by([row("x")])
        assert not c.satisfied_by([row("bad"), row("x")])

    def test_empty_trigger_rejected(self):
        with pytest.raises(ConstraintError):
            ConstraintBuilder.take_together("item", [], "c")
        with pytest.raises(ConstraintError):
            ConstraintBuilder.prerequisite("item", "x", [])


class TestConstraintSet:
    def test_all_must_hold(self):
        sigma = ConstraintSet(
            [
                ConstraintBuilder.requires_value("item", "a"),
                ConstraintBuilder.forbids_value("item", "z"),
            ]
        )
        assert sigma.satisfied_by([row("a"), row("b")])
        assert not sigma.satisfied_by([row("a"), row("z")])
        assert not sigma.satisfied_by([row("b")])

    def test_empty_set_always_satisfied(self):
        sigma = ConstraintSet([])
        assert sigma.satisfied_by([])
        assert sigma.satisfied_by([row("anything")])

    def test_m_bound_enforced(self):
        wide = ConstraintBuilder.at_most_two("kind", "center", "id")  # l = 3
        with pytest.raises(ConstraintError, match="exceeds"):
            ConstraintSet([wide], m=2)
        ConstraintSet([wide], m=3)  # fine

    def test_m_minimum(self):
        with pytest.raises(ConstraintError):
            ConstraintSet([], m=1)

    def test_iteration_and_len(self):
        c = ConstraintBuilder.requires_value("item", "a")
        sigma = ConstraintSet([c])
        assert len(sigma) == 1
        assert list(sigma) == [c]


class TestSemanticsDetails:
    def test_universal_variables_range_with_repetition(self):
        # ∀t0,t1 (t0=a ∧ t1=a → ∃s s=b): with a single 'a' tuple the
        # premise still fires via t0 = t1.
        chi = (
            Predicate(0, "item", ComparisonOp.EQ, const="a"),
            Predicate(1, "item", ComparisonOp.EQ, const="a"),
        )
        xi = (Predicate(2, "item", ComparisonOp.EQ, const="b"),)
        c = CompatibilityConstraint(2, 1, chi, xi)
        assert not c.satisfied_by([row("a")])
        assert c.satisfied_by([row("a"), row("b")])

    def test_vacuous_on_empty_selection(self):
        c = ConstraintBuilder.prerequisite("item", "x", ["y"])
        assert c.satisfied_by([])

    def test_existential_only_constraint_on_empty_selection_fails(self):
        c = ConstraintBuilder.requires_value("item", "x")
        assert not c.satisfied_by([])
