"""Tests for the executable Gollapudi–Sharma axiom system.

The expected satisfaction pattern (from the WWW 2009 paper, Table 1):
all three functions are scale invariant and consistent; F_MS and F_MM
violate stability (the impossibility theorem); monotonicity in the two
criteria holds for the relevant λ ranges.
"""

import random

import pytest

from repro.core.axioms import (
    check_consistency,
    check_diversity_monotonicity,
    check_relevance_monotonicity,
    check_richness,
    check_scale_invariance,
    check_stability,
    stability_counterexample,
)
from repro.core.objectives import ObjectiveKind


def random_inputs(n, seed):
    rng = random.Random(seed)
    relevance = {i: round(rng.random() * 5, 2) for i in range(n)}
    distance = {
        (a, b): round(rng.random() * 5, 2)
        for a in range(n)
        for b in range(a + 1, n)
    }
    return relevance, distance


SUM_KINDS = (ObjectiveKind.MAX_SUM, ObjectiveKind.MAX_MIN)


class TestScaleInvariance:
    @pytest.mark.parametrize("kind", list(ObjectiveKind))
    @pytest.mark.parametrize("seed", range(4))
    def test_holds_for_all_objectives(self, kind, seed):
        relevance, distance = random_inputs(5, seed)
        report = check_scale_invariance(kind, relevance, distance, 5, 2)
        assert report.holds, report


class TestConsistency:
    @pytest.mark.parametrize("kind", list(ObjectiveKind))
    @pytest.mark.parametrize("seed", range(4))
    def test_holds(self, kind, seed):
        relevance, distance = random_inputs(5, 10 + seed)
        report = check_consistency(kind, relevance, distance, 5, 2)
        assert report.holds, report


class TestRichness:
    @pytest.mark.parametrize("kind", SUM_KINDS)
    def test_sum_objectives_rich(self, kind):
        report = check_richness(kind, n=4, k=2)
        assert report.holds, report

    def test_mono_richness_k2(self):
        # F_mono can also single out any pair via relevance alone.
        report = check_richness(ObjectiveKind.MONO, n=4, k=2, lam=0.0)
        assert report.holds, report


class TestStability:
    @pytest.mark.parametrize("kind", SUM_KINDS)
    def test_violated_by_sum_objectives(self, kind):
        """The impossibility direction: a counterexample exists."""
        report = stability_counterexample(kind)
        assert report is not None, f"{kind} unexpectedly stable everywhere"
        assert not report.holds

    def test_mono_is_stable(self):
        """F_mono is modular over a fixed universe, so top-(k+1) extends
        top-k: no stability counterexample should be found."""
        assert stability_counterexample(ObjectiveKind.MONO) is None

    def test_stability_holds_on_uniform_inputs(self):
        # All-equal distances: any k-set is optimal, so stability holds.
        relevance = {i: 1.0 for i in range(5)}
        distance = {(a, b): 1.0 for a in range(5) for b in range(a + 1, 5)}
        for kind in ObjectiveKind:
            report = check_stability(kind, relevance, distance, 5, 2)
            assert report.holds, report


class TestMonotonicity:
    @pytest.mark.parametrize("kind", list(ObjectiveKind))
    @pytest.mark.parametrize("seed", range(3))
    def test_relevance_monotone(self, kind, seed):
        relevance, distance = random_inputs(5, 20 + seed)
        report = check_relevance_monotonicity(kind, relevance, distance, 5, 3)
        assert report.holds, report

    @pytest.mark.parametrize("kind", SUM_KINDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_diversity_monotone(self, kind, seed):
        relevance, distance = random_inputs(5, 30 + seed)
        report = check_diversity_monotonicity(kind, relevance, distance, 5, 3)
        assert report.holds, report

    def test_report_repr(self):
        relevance, distance = random_inputs(4, 1)
        report = check_scale_invariance(
            ObjectiveKind.MAX_SUM, relevance, distance, 4, 2
        )
        assert "scale invariance" in repr(report)
