"""Property suite for the batch-native scoring providers (ISSUE 4).

The load-bearing contract: for every workload, the native provider's
batch methods, its *derived* scalar callables, and a
:class:`ScalarCallableProvider` adapter wrapped around those callables
must agree **element-wise with exact float equality on the same
backend** — including duplicate rows in a batch, across the vectorized
and scalar block paths, and after kernels are delta-patched.
"""

import pytest

from repro.core.instance import DiversificationInstance
from repro.core.objectives import Objective, ObjectiveError, ObjectiveKind
from repro.core.providers import (
    FeatureSpaceProvider,
    HierarchyMetric,
    MismatchMetric,
    ProviderError,
    ScalarCallableProvider,
    resolve_metric,
)
from repro.engine import numpy_available
from repro.workloads import courses, gifts, streaming, synthetic, teams, websearch

BACKENDS = [False] + ([True] if numpy_available() else [])


def websearch_case():
    db = websearch.generate(num_docs=24, num_intents=5, seed=11)
    provider = websearch.scoring_provider(db)
    rows = db.relation(websearch.DOCS.name).sorted_rows()
    return provider, rows, None


def streaming_case():
    workload = streaming.StreamingWebSearch(num_docs=18, num_intents=4, seed=5)
    for _ in range(6):
        workload.step()
    instance = workload.make_instance(k=4)
    return workload.provider, instance.answers(), instance.query


def synthetic_case():
    db = synthetic.random_database(n=20, seed=7)
    provider = synthetic.scoring_provider()
    rows = db.relation("items").sorted_rows()
    return provider, rows, None


def courses_case():
    db = courses.generate(extra_courses=10, seed=2)
    provider = courses.scoring_provider()
    rows = db.relation(courses.COURSES.name).sorted_rows()
    return provider, rows, None


def teams_case():
    db = teams.generate(num_players=15, seed=4)
    provider = teams.scoring_provider()
    rows = db.relation(teams.PLAYERS.name).sorted_rows()
    return provider, rows, None


def gifts_case():
    db = gifts.generate(num_items=25, num_history=60, seed=9)
    provider = gifts.scoring_provider(db)
    instance = DiversificationInstance(
        gifts.peter_query_cq(low=5, high=95),
        db,
        k=4,
        objective=Objective.from_provider(ObjectiveKind.MAX_SUM, provider),
    )
    return provider, instance.answers(), instance.query


WORKLOAD_CASES = {
    "websearch": websearch_case,
    "streaming": streaming_case,
    "synthetic": synthetic_case,
    "courses": courses_case,
    "teams": teams_case,
    "gifts": gifts_case,
}


def as_floats(vector):
    return [float(v) for v in vector]


def as_matrix(block):
    return [[float(v) for v in row] for row in block]


@pytest.fixture(params=sorted(WORKLOAD_CASES), ids=str)
def case(request):
    provider, rows, query = WORKLOAD_CASES[request.param]()
    assert len(rows) >= 8, "case too small to be interesting"
    return provider, rows, query


@pytest.mark.parametrize("use_numpy", BACKENDS)
class TestElementwiseAgreement:
    def test_relevance_three_ways(self, case, use_numpy):
        provider, rows, query = case
        # Duplicate rows in the batch must score like their originals.
        batch = list(rows) + list(rows[:3])
        derived = provider.relevance_function()
        adapter = ScalarCallableProvider(derived, provider.distance_function())
        native = as_floats(provider.relevance_batch(batch, query, use_numpy=use_numpy))
        scalars = [derived(row, query) for row in batch]
        adapted = as_floats(adapter.relevance_batch(batch, query, use_numpy=use_numpy))
        assert native == scalars
        assert native == adapted
        assert [provider.relevance_at(row, query) for row in batch] == scalars

    def test_distance_block_three_ways(self, case, use_numpy):
        provider, rows, _ = case
        rows_a = list(rows[:10]) + [rows[2], rows[2]]  # duplicates
        rows_b = list(rows[4:14]) + [rows[2]]
        derived = provider.distance_function()
        adapter = ScalarCallableProvider(provider.relevance_function(), derived)
        native = as_matrix(provider.distance_block(rows_a, rows_b, use_numpy=use_numpy))
        scalars = [[derived(a, b) for b in rows_b] for a in rows_a]
        adapted = as_matrix(adapter.distance_block(rows_a, rows_b, use_numpy=use_numpy))
        assert native == scalars
        assert native == adapted

    def test_symmetric_self_block(self, case, use_numpy):
        provider, rows, _ = case
        batch = list(rows[:8]) + [rows[0], rows[5]]  # duplicated values
        block = as_matrix(provider.distance_block(batch, batch, use_numpy=use_numpy))
        n = len(batch)
        for i in range(n):
            assert block[i][i] == 0.0
            for j in range(n):
                assert block[i][j] == block[j][i]
                assert block[i][j] >= 0.0
                if batch[i].values == batch[j].values:
                    assert block[i][j] == 0.0

    def test_self_block_matches_cross_block(self, case, use_numpy):
        # `rows_a is rows_b` takes the triangle-once (or single feature
        # matrix) path; scoring the same rows as two distinct lists must
        # give the identical matrix.
        provider, rows, _ = case
        batch = list(rows[:9])
        other = list(batch)
        assert other is not batch
        self_block = as_matrix(provider.distance_block(batch, batch, use_numpy=use_numpy))
        cross_block = as_matrix(provider.distance_block(batch, other, use_numpy=use_numpy))
        assert self_block == cross_block


@pytest.mark.skipif(not numpy_available(), reason="requires numpy")
class TestVectorizedScalarParity:
    """The vectorized NumPy block path must equal the scalar-loop path
    bit for bit (this is what keeps the two kernel backends identical)."""

    def test_blocks_agree_across_paths(self, case):
        provider, rows, _ = case
        rows_a = list(rows[:12])
        rows_b = list(rows[6:])
        vectorized = as_matrix(provider.distance_block(rows_a, rows_b, use_numpy=True))
        scalar = as_matrix(provider.distance_block(rows_a, rows_b, use_numpy=False))
        assert vectorized == scalar

    def test_relevance_agrees_across_paths(self, case):
        provider, rows, query = case
        vectorized = as_floats(provider.relevance_batch(rows, query, use_numpy=True))
        scalar = as_floats(provider.relevance_batch(rows, query, use_numpy=False))
        assert vectorized == scalar


class TestObjectiveCarriesProvider:
    def test_from_provider_wires_derived_callables(self):
        provider = courses.scoring_provider()
        objective = Objective.from_provider(ObjectiveKind.MAX_SUM, provider, lam=0.4)
        assert objective.provider is provider
        assert objective.relevance is provider.relevance_function()
        assert objective.distance is provider.distance_function()
        assert objective.with_lambda(0.9).provider is provider

    def test_provider_objective_helpers(self):
        provider = teams.scoring_provider()
        assert provider.max_sum(0.3).kind is ObjectiveKind.MAX_SUM
        assert provider.max_min(0.3).kind is ObjectiveKind.MAX_MIN
        assert provider.mono(0.3).kind is ObjectiveKind.MONO

    def test_mismatched_scalar_callables_rejected(self):
        provider = teams.scoring_provider()
        other = teams.scoring_provider()
        with pytest.raises(ObjectiveError):
            Objective.max_sum(
                other.relevance_function(),
                other.distance_function(),
                provider=provider,
            )

    def test_instance_passthrough(self):
        db = teams.generate(num_players=9)
        provider = teams.scoring_provider()
        instance = DiversificationInstance(
            teams.roster_query(),
            db,
            k=3,
            objective=Objective.from_provider(ObjectiveKind.MAX_SUM, provider),
        )
        assert instance.provider is provider


class TestDerivedCallableContracts:
    def test_derived_callables_are_cached(self):
        provider = websearch.scoring_provider(websearch.generate(num_docs=6))
        assert provider.relevance_function() is provider.relevance_function()
        assert provider.distance_function() is provider.distance_function()

    def test_scalar_adapter_reuses_originals(self):
        relevance = teams.skill_relevance()
        distance = teams.position_distance()
        adapter = ScalarCallableProvider(relevance, distance)
        assert adapter.relevance_function() is relevance
        assert adapter.distance_function() is distance

    def test_distance_names_preserved(self):
        db = websearch.generate(num_docs=6)
        assert websearch.intent_distance(db).name == "intent-jaccard"
        assert courses.area_distance().name == "area-level"
        assert teams.position_distance().name == "position"
        assert gifts.type_distance(gifts.generate(num_items=8)).name == "type-category"
        assert synthetic.euclidean_distance().name == "euclidean"


class TestMetrics:
    def test_resolve_metric_rejects_unknown(self):
        with pytest.raises(ProviderError):
            resolve_metric("cosine-nope")

    def test_resolve_metric_passthrough(self):
        metric = HierarchyMetric((3.0, 1.0))
        assert resolve_metric(metric) is metric
        assert resolve_metric("euclidean").name == "euclidean"

    def test_hierarchy_rejects_bad_weights(self):
        with pytest.raises(ProviderError):
            HierarchyMetric(())
        with pytest.raises(ProviderError):
            HierarchyMetric((1.0, -2.0))

    def test_mismatch_rejects_bad_weights(self):
        with pytest.raises(ProviderError):
            MismatchMetric((-1.0,))

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_mismatch_metric_counts_differing_columns(self, use_numpy):
        db = synthetic.random_database(n=10, seed=1)
        provider = FeatureSpaceProvider(
            lambda row: (float(row["id"] % 2), float(row["id"] % 3)),
            metric="mismatch",
            relevance=lambda row: 1.0,
        )
        rows = db.relation("items").sorted_rows()
        block = as_matrix(provider.distance_block(rows, rows, use_numpy=use_numpy))
        for i, left in enumerate(rows):
            for j, right in enumerate(rows):
                expected = float(left["id"] % 2 != right["id"] % 2) + float(
                    left["id"] % 3 != right["id"] % 3
                )
                if left.values == right.values:
                    expected = 0.0
                assert block[i][j] == expected
