"""Property-based invariants over the core problems (hypothesis).

These encode relationships the paper's definitions force:

* RDC(B) > 0  ⇔  QRD(B)  (counting vs decision);
* RDC is antitone in B;
* every set of rank 1 achieves the optimum;
* DRP is monotone in r;
* the PTIME F_mono algorithms agree with enumeration on random data;
* λ interpolation: F at λ∈{0,1} matches the single-criterion functions.
"""

from hypothesis import given, settings, strategies as st

from repro.core.drp import drp_brute_force, rank_of, top_r_sets_modular
from repro.core.functions import DistanceFunction, RelevanceFunction
from repro.core.instance import DiversificationInstance
from repro.core.objectives import Objective, ObjectiveKind
from repro.core.qrd import qrd_brute_force, qrd_decide
from repro.core.rdc import rdc_brute_force
from repro.relational.queries import identity_query
from repro.relational.schema import Database, Relation, RelationSchema

SCHEMA = RelationSchema("items", ("id", "cat", "score"))


@st.composite
def instances(draw, kind=None):
    n = draw(st.integers(3, 7))
    k = draw(st.integers(1, min(3, n)))
    lam = draw(st.sampled_from([0.0, 0.25, 0.5, 1.0]))
    the_kind = kind or draw(st.sampled_from(list(ObjectiveKind)))
    rows = [
        (
            i,
            draw(st.integers(0, 2)),
            draw(st.integers(0, 8)),
        )
        for i in range(n)
    ]
    db = Database([Relation(SCHEMA, rows)])
    objective = Objective(
        the_kind,
        RelevanceFunction.from_attribute("score"),
        DistanceFunction.attribute_mismatch(("cat",)),
        lam,
    )
    return DiversificationInstance(identity_query(SCHEMA), db, k=k, objective=objective)


@given(instances(), st.floats(0, 50, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_count_positive_iff_decision_yes(instance, bound):
    assert (rdc_brute_force(instance, bound) > 0) == qrd_brute_force(instance, bound)


@given(instances(), st.floats(0, 30), st.floats(0, 30))
@settings(max_examples=40, deadline=None)
def test_count_antitone_in_bound(instance, b1, b2):
    low, high = min(b1, b2), max(b1, b2)
    assert rdc_brute_force(instance, low) >= rdc_brute_force(instance, high)


@given(instances())
@settings(max_examples=30, deadline=None)
def test_rank_one_iff_optimal(instance):
    sets = list(instance.candidate_sets())
    if not sets:
        return
    best_value = max(instance.value(s) for s in sets)
    for subset in sets[:6]:
        is_rank_one = rank_of(instance, subset) == 1
        # Exact comparison, matching rank_of's strict ordering: two
        # mathematically-equal F_mono sets can compute to floats one
        # ulp apart (different summation order over item scores), so a
        # one-sided epsilon here declares a rank-2 set "optimal" and
        # flakes.  rank 1 ⇔ the computed value equals the computed max.
        achieves_best = instance.value(subset) >= best_value
        assert is_rank_one == achieves_best


@given(instances(), st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_drp_monotone_in_r(instance, r):
    sets = list(instance.candidate_sets())
    if not sets:
        return
    subset = sets[0]
    if drp_brute_force(instance, subset, r):
        assert drp_brute_force(instance, subset, r + 1)


@given(instances(kind=ObjectiveKind.MONO), st.floats(0, 40))
@settings(max_examples=40, deadline=None)
def test_mono_ptime_matches_enumeration(instance, bound):
    assert qrd_decide(instance, bound, method="modular") == qrd_brute_force(
        instance, bound
    )


@given(instances(kind=ObjectiveKind.MONO), st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_top_r_prefix_stability(instance, r):
    """The top-r list must be a prefix of the top-(r+1) list by value."""
    if not list(instance.candidate_sets()):
        return
    shorter = [v for v, _ in top_r_sets_modular(instance, r)]
    longer = [v for v, _ in top_r_sets_modular(instance, r + 1)]
    assert longer[: len(shorter)] == shorter


@given(instances())
@settings(max_examples=30, deadline=None)
def test_lambda_endpoints(instance):
    """λ=0 drops δ_dis entirely; λ=1 drops δ_rel entirely."""
    sets = list(instance.candidate_sets())
    if not sets:
        return
    subset = sets[0]
    objective = instance.objective
    zero = instance.with_objective(objective.with_lambda(0.0))
    one = instance.with_objective(objective.with_lambda(1.0))

    crippled_distance = Objective(
        objective.kind, objective.relevance, DistanceFunction.constant(0.0), 0.0
    )
    crippled_relevance = Objective(
        objective.kind, RelevanceFunction.constant(0.0), objective.distance, 1.0
    )
    assert zero.value(subset) == instance.with_objective(crippled_distance).value(subset)
    assert one.value(subset) == instance.with_objective(crippled_relevance).value(subset)
