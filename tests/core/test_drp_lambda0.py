"""Tests for the λ=0 F_MM PTIME DRP algorithm (Theorem 8.2)."""

import itertools

import pytest

from repro.core.constraints import ConstraintBuilder, ConstraintSet
from repro.core.drp import (
    DRPError,
    drp_brute_force,
    drp_decide,
    drp_max_min_relevance,
)
from repro.core.objectives import ObjectiveKind
from repro.workloads.synthetic import random_instance
from tests.conftest import make_small_instance


@pytest.fixture
def mm_instance(small_db, items_schema):
    return make_small_instance(
        small_db, items_schema, kind=ObjectiveKind.MAX_MIN, lam=0.0
    )


class TestMaxMinRelevanceDRP:
    @pytest.mark.parametrize("r", [1, 2, 3, 5, 10])
    def test_agrees_with_brute_force(self, mm_instance, r):
        for subset in itertools.islice(mm_instance.candidate_sets(), 10):
            assert drp_max_min_relevance(mm_instance, subset, r) == drp_brute_force(
                mm_instance, subset, r
            )

    def test_binomial_semantics(self, mm_instance):
        # Scores: 9,8,7,6,4,2, k=3.  A set with min rel 4 is beaten by
        # exactly C(4,3)=4 sets (those inside {9,8,7,6}).
        rows = {r["score"]: r for r in mm_instance.answers()}
        subset = (rows[9.0], rows[8.0], rows[4.0])
        assert drp_max_min_relevance(mm_instance, subset, 5)
        assert not drp_max_min_relevance(mm_instance, subset, 4)
        assert drp_brute_force(mm_instance, subset, 5)
        assert not drp_brute_force(mm_instance, subset, 4)

    def test_best_set_rank_one(self, mm_instance):
        rows = sorted(mm_instance.answers(), key=lambda r: r["score"], reverse=True)
        best = tuple(rows[:3])
        assert drp_max_min_relevance(mm_instance, best, 1)

    def test_rejects_wrong_setting(self, small_instance):
        subset = next(iter(small_instance.candidate_sets()))
        with pytest.raises(DRPError):
            drp_max_min_relevance(small_instance, subset, 1)

    def test_rejects_constraints(self, mm_instance):
        sigma = ConstraintSet([ConstraintBuilder.forbids_value("id", 1)])
        constrained = mm_instance.with_constraints(sigma)
        subset = next(iter(constrained.candidate_sets()))
        with pytest.raises(DRPError, match="constraints"):
            drp_max_min_relevance(constrained, subset, 1)

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_agreement(self, seed):
        instance = random_instance(
            n=9, k=3, kind=ObjectiveKind.MAX_MIN, lam=0.0, seed=seed
        )
        for subset in itertools.islice(instance.candidate_sets(), 8):
            for r in (1, 2, 4):
                assert drp_max_min_relevance(instance, subset, r) == drp_brute_force(
                    instance, subset, r
                )

    def test_auto_dispatch_uses_it(self, mm_instance):
        subset = next(iter(mm_instance.candidate_sets()))
        for r in (1, 3, 8):
            assert drp_decide(mm_instance, subset, r) == drp_brute_force(
                mm_instance, subset, r
            )

    def test_explicit_method(self, mm_instance):
        subset = next(iter(mm_instance.candidate_sets()))
        assert drp_decide(
            mm_instance, subset, 30, method="max-min-relevance"
        ) == drp_brute_force(mm_instance, subset, 30)
