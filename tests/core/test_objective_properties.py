"""Hypothesis property tests on the objective functions themselves."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.functions import DistanceFunction, RelevanceFunction
from repro.core.objectives import Objective, ObjectiveKind
from repro.relational.schema import RelationSchema, Row

SCHEMA = RelationSchema("t", ("id",))


@st.composite
def scored_sets(draw, min_size=1, max_size=5):
    n = draw(st.integers(min_size, max_size))
    relevance = {
        i: draw(st.floats(0, 10, allow_nan=False, allow_infinity=False))
        for i in range(n)
    }
    distance = {}
    for a in range(n):
        for b in range(a + 1, n):
            distance[(a, b)] = draw(
                st.floats(0, 10, allow_nan=False, allow_infinity=False)
            )
    lam = draw(st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]))
    rows = [Row(SCHEMA, (i,)) for i in range(n)]
    rel = RelevanceFunction.from_table({(i,): v for i, v in relevance.items()})
    dis = DistanceFunction.from_table(
        {((a,), (b,)): v for (a, b), v in distance.items()}
    )
    return rows, rel, dis, lam


@given(scored_sets())
@settings(max_examples=60)
def test_objectives_non_negative(data):
    rows, rel, dis, lam = data
    for kind in ObjectiveKind:
        objective = Objective(kind, rel, dis, lam)
        value = objective.value(rows, universe=rows)
        assert value >= -1e-12


@given(scored_sets(min_size=2))
@settings(max_examples=60)
def test_permutation_invariance(data):
    rows, rel, dis, lam = data
    reversed_rows = list(reversed(rows))
    for kind in ObjectiveKind:
        objective = Objective(kind, rel, dis, lam)
        assert math.isclose(
            objective.value(rows, universe=rows),
            objective.value(reversed_rows, universe=rows),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )


@given(scored_sets(min_size=2), st.floats(0.1, 5.0))
@settings(max_examples=60)
def test_scale_covariance(data, alpha):
    """Scaling δ_rel and δ_dis by α scales every objective by α."""
    rows, rel, dis, lam = data

    scaled_rel = RelevanceFunction.from_callable(
        lambda r, q=None: alpha * rel(r), name="scaled"
    )
    scaled_dis = DistanceFunction.from_callable(
        lambda a, b: alpha * dis(a, b), name="scaled"
    )
    for kind in ObjectiveKind:
        base = Objective(kind, rel, dis, lam).value(rows, universe=rows)
        scaled = Objective(kind, scaled_rel, scaled_dis, lam).value(
            rows, universe=rows
        )
        assert math.isclose(scaled, alpha * base, rel_tol=1e-9, abs_tol=1e-9)


@given(scored_sets(min_size=2))
@settings(max_examples=60)
def test_max_min_at_most_max_sum_scaled(data):
    """F_MM picks minima where F_MS sums: F_MM ≤ F_MS/(k−1) pointwise
    components-wise is not exact, but F_MM ≤ (1−λ)max_rel + λ·max_dis
    and both are bounded by their aggregates; check the simple bound
    F_MM(U) ≤ (1−λ)·avg_rel + λ·avg_dis + ε via the sums."""
    rows, rel, dis, lam = data
    k = len(rows)
    mm = Objective(ObjectiveKind.MAX_MIN, rel, dis, lam).value(rows)
    ms = Objective(ObjectiveKind.MAX_SUM, rel, dis, lam).value(rows)
    # min·(k−1)·k pairs/items bound the sums from below:
    # (k−1)(1−λ)·k·min_rel + λ·k(k−1)·min_dis ≤ F_MS, and
    # F_MM = (1−λ)min_rel + λ·min_dis, so F_MM·k(k−1) ≤ F_MS + slack.
    assert mm * k * (k - 1) <= ms + 1e-6


@given(scored_sets(min_size=2), st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]))
@settings(max_examples=60)
def test_lambda_interpolation_is_affine(data, new_lam):
    """For a fixed set, F(λ) is affine in λ for all three objectives
    — F(λ) = (1−λ)·F(0)'s relevance part + λ·F(1)'s diversity part —
    except F_MS where the (k−1) factor multiplies only relevance."""
    rows, rel, dis, lam = data
    for kind in ObjectiveKind:
        at0 = Objective(kind, rel, dis, 0.0).value(rows, universe=rows)
        at1 = Objective(kind, rel, dis, 1.0).value(rows, universe=rows)
        mid = Objective(kind, rel, dis, new_lam).value(rows, universe=rows)
        expected = (1 - new_lam) * at0 + new_lam * at1
        assert math.isclose(mid, expected, rel_tol=1e-9, abs_tol=1e-9)


@given(scored_sets(min_size=1, max_size=4))
@settings(max_examples=40)
def test_mono_modularity(data):
    """F_mono(U ∪ {t}) − F_mono(U) is independent of U (modularity)."""
    rows, rel, dis, lam = data
    if len(rows) < 2:
        return
    objective = Objective(ObjectiveKind.MONO, rel, dis, lam)
    universe = rows
    extra = rows[-1]
    base = rows[:-1]
    for split in range(len(base)):
        u1 = base[:split]
        gain = objective.value(list(u1) + [extra], universe=universe) - (
            objective.value(u1, universe=universe)
        )
        gain_full = objective.value(base + [extra], universe=universe) - (
            objective.value(base, universe=universe)
        )
        assert math.isclose(gain, gain_full, rel_tol=1e-9, abs_tol=1e-9)
