"""Tests for the QRD solvers, including agreement between the PTIME
algorithms (Theorems 5.4, 8.2) and brute force."""

import pytest

from repro.core.constraints import ConstraintBuilder, ConstraintSet
from repro.core.objectives import ObjectiveKind
from repro.core.qrd import (
    qrd_brute_force,
    qrd_decide,
    qrd_max_min_relevance,
    qrd_modular,
    qrd_modular_witness,
    qrd_witness,
    qrd_witness_brute_force,
)
from repro.workloads.synthetic import random_instance
from tests.conftest import make_small_instance


class TestBruteForce:
    def test_decides_achievable_bound(self, small_instance):
        best = max(
            small_instance.value(s) for s in small_instance.candidate_sets()
        )
        assert qrd_brute_force(small_instance, best)
        assert not qrd_brute_force(small_instance, best + 1e-6)

    def test_witness_is_valid(self, small_instance):
        witness = qrd_witness_brute_force(small_instance, 1.0)
        assert witness is not None
        assert small_instance.is_valid_set(witness, 1.0)

    def test_no_witness_above_optimum(self, small_instance):
        best = max(
            small_instance.value(s) for s in small_instance.candidate_sets()
        )
        assert qrd_witness_brute_force(small_instance, best + 1.0) is None

    def test_insufficient_answers(self, small_db, items_schema):
        instance = make_small_instance(small_db, items_schema, k=10)
        assert not qrd_brute_force(instance, 0.0)


class TestModularPTIME:
    @pytest.mark.parametrize("lam", [0.0, 0.3, 1.0])
    def test_mono_agrees_with_brute_force(self, lam, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO, lam=lam
        )
        values = [instance.value(s) for s in instance.candidate_sets()]
        for bound in sorted(set(values))[:5] + [max(values), max(values) + 1]:
            assert qrd_modular(instance, bound) == qrd_brute_force(instance, bound)

    def test_max_sum_lambda0(self, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MAX_SUM, lam=0.0
        )
        best = max(instance.value(s) for s in instance.candidate_sets())
        assert qrd_modular(instance, best)
        assert not qrd_modular(instance, best + 1e-6)

    def test_rejects_non_modular(self, small_instance):
        with pytest.raises(ValueError, match="not modular"):
            qrd_modular(small_instance, 1.0)

    def test_rejects_constraints(self, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO
        ).with_constraints(ConstraintSet([ConstraintBuilder.forbids_value("id", 1)]))
        with pytest.raises(ValueError, match="constraints"):
            qrd_modular(instance, 1.0)

    def test_witness_is_top_k(self, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO
        )
        witness = qrd_modular_witness(instance, 0.0)
        assert witness is not None
        chosen = sorted(instance.item_score(r) for r in witness)
        all_scores = sorted(instance.item_score(r) for r in instance.answers())
        assert chosen == all_scores[-3:]


class TestMaxMinRelevance:
    def test_agrees_with_brute_force(self, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MAX_MIN, lam=0.0
        )
        for bound in (0.0, 2.0, 4.0, 6.0, 6.5, 7.0, 9.0):
            assert qrd_max_min_relevance(instance, bound) == qrd_brute_force(
                instance, bound
            )

    def test_kth_largest_semantics(self, small_db, items_schema):
        # Scores are 9,8,7,6,4,2; k=3 → best min-relevance is 7.
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MAX_MIN, lam=0.0
        )
        assert qrd_max_min_relevance(instance, 7.0)
        assert not qrd_max_min_relevance(instance, 7.1)

    def test_rejects_wrong_objective(self, small_instance):
        with pytest.raises(ValueError):
            qrd_max_min_relevance(small_instance, 1.0)


class TestDispatch:
    def test_auto_uses_modular_for_mono(self, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO
        )
        best = max(instance.value(s) for s in instance.candidate_sets())
        assert qrd_decide(instance, best)
        assert not qrd_decide(instance, best + 1e-6)

    def test_auto_with_constraints_uses_enumeration(self, small_db, items_schema):
        sigma = ConstraintSet([ConstraintBuilder.requires_value("id", 6)])
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO
        ).with_constraints(sigma)
        # Best constrained set must contain item 6 (score 2.0).
        assert qrd_decide(instance, 0.0)
        witness = qrd_witness(instance, 0.0)
        assert witness is not None and any(r["id"] == 6 for r in witness)

    def test_unknown_method_rejected(self, small_instance):
        with pytest.raises(ValueError):
            qrd_decide(small_instance, 1.0, method="magic")

    @pytest.mark.parametrize("kind", list(ObjectiveKind))
    @pytest.mark.parametrize("lam", [0.0, 0.5, 1.0])
    def test_auto_agrees_with_brute_force_randomized(self, kind, lam):
        instance = random_instance(n=8, k=3, kind=kind, lam=lam, seed=42)
        values = sorted(
            {instance.value(s) for s in instance.candidate_sets()}
        )
        probes = [values[0], values[len(values) // 2], values[-1], values[-1] + 1]
        for bound in probes:
            assert qrd_decide(instance, bound) == qrd_brute_force(instance, bound)
