"""The complexity classifier vs the paper, cell by cell.

Every assertion here is one claim of Tables I–III or Figures 1/3/4 of
Deng & Fan (TODS 2014).  A failure means the reproduction's complexity
map disagrees with the paper.
"""

import pytest

from repro.core.complexity import (
    ComplexityClass as CC,
    Mode,
    Problem,
    Setting,
    SettingNotCovered,
    classify,
    figure_map,
    render_figure_map,
    render_table,
    table1,
    table2,
    table3,
)
from repro.core.objectives import ObjectiveKind as OK
from repro.relational.ast import QueryLanguage as QL

SMALL = (QL.CQ, QL.UCQ, QL.EFO_PLUS)
ALL = SMALL + (QL.FO,)
SUM_OBJECTIVES = (OK.MAX_SUM, OK.MAX_MIN)


def bounds(problem, objective, language, mode, **flags):
    return classify(Setting(problem, objective, language, mode, **flags)).complexity


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

class TestTableICombined:
    @pytest.mark.parametrize("objective", SUM_OBJECTIVES)
    @pytest.mark.parametrize("language", SMALL)
    def test_sum_objectives_small_languages(self, objective, language):
        assert bounds(Problem.QRD, objective, language, Mode.COMBINED) is CC.NP_COMPLETE
        assert bounds(Problem.DRP, objective, language, Mode.COMBINED) is CC.CONP_COMPLETE
        assert bounds(Problem.RDC, objective, language, Mode.COMBINED) is CC.SHARP_NP

    @pytest.mark.parametrize("objective", SUM_OBJECTIVES)
    def test_sum_objectives_fo(self, objective):
        assert bounds(Problem.QRD, objective, QL.FO, Mode.COMBINED) is CC.PSPACE_COMPLETE
        assert bounds(Problem.DRP, objective, QL.FO, Mode.COMBINED) is CC.PSPACE_COMPLETE
        assert bounds(Problem.RDC, objective, QL.FO, Mode.COMBINED) is CC.SHARP_PSPACE

    @pytest.mark.parametrize("language", ALL)
    def test_mono_all_languages(self, language):
        # Theorem 5.2/6.2/7.2: the objective dominates for F_mono.
        assert bounds(Problem.QRD, OK.MONO, language, Mode.COMBINED) is CC.PSPACE_COMPLETE
        assert bounds(Problem.DRP, OK.MONO, language, Mode.COMBINED) is CC.PSPACE_COMPLETE
        assert bounds(Problem.RDC, OK.MONO, language, Mode.COMBINED) is CC.SHARP_PSPACE


class TestTableIData:
    @pytest.mark.parametrize("objective", SUM_OBJECTIVES)
    @pytest.mark.parametrize("language", ALL)
    def test_sum_objectives(self, objective, language):
        assert bounds(Problem.QRD, objective, language, Mode.DATA) is CC.NP_COMPLETE
        assert bounds(Problem.DRP, objective, language, Mode.DATA) is CC.CONP_COMPLETE
        assert (
            bounds(Problem.RDC, objective, language, Mode.DATA)
            is CC.SHARP_P_PARSIMONIOUS
        )

    @pytest.mark.parametrize("language", ALL)
    def test_mono(self, language):
        assert bounds(Problem.QRD, OK.MONO, language, Mode.DATA) is CC.PTIME
        assert bounds(Problem.DRP, OK.MONO, language, Mode.DATA) is CC.PTIME
        assert bounds(Problem.RDC, OK.MONO, language, Mode.DATA) is CC.SHARP_P_TURING


# ---------------------------------------------------------------------------
# Table II (special cases, Section 8)
# ---------------------------------------------------------------------------

class TestIdentityQueries:
    """Corollary 8.1: combined and data complexity coincide."""

    @pytest.mark.parametrize("mode", list(Mode))
    @pytest.mark.parametrize("objective", SUM_OBJECTIVES)
    def test_sum_objectives(self, mode, objective):
        assert bounds(Problem.QRD, objective, QL.IDENTITY, mode) is CC.NP_COMPLETE
        assert bounds(Problem.DRP, objective, QL.IDENTITY, mode) is CC.CONP_COMPLETE
        assert (
            bounds(Problem.RDC, objective, QL.IDENTITY, mode)
            is CC.SHARP_P_PARSIMONIOUS
        )

    @pytest.mark.parametrize("mode", list(Mode))
    def test_mono(self, mode):
        assert bounds(Problem.QRD, OK.MONO, QL.IDENTITY, mode) is CC.PTIME
        assert bounds(Problem.DRP, OK.MONO, QL.IDENTITY, mode) is CC.PTIME
        assert bounds(Problem.RDC, OK.MONO, QL.IDENTITY, mode) is CC.SHARP_P_TURING


class TestLambdaZero:
    """Theorem 8.2."""

    @pytest.mark.parametrize("objective", SUM_OBJECTIVES)
    @pytest.mark.parametrize("language", SMALL)
    def test_combined_unchanged_small(self, objective, language):
        assert (
            bounds(Problem.QRD, objective, language, Mode.COMBINED, lambda_zero=True)
            is CC.NP_COMPLETE
        )
        assert (
            bounds(Problem.DRP, objective, language, Mode.COMBINED, lambda_zero=True)
            is CC.CONP_COMPLETE
        )
        assert (
            bounds(Problem.RDC, objective, language, Mode.COMBINED, lambda_zero=True)
            is CC.SHARP_NP
        )

    @pytest.mark.parametrize("objective", SUM_OBJECTIVES)
    def test_combined_unchanged_fo(self, objective):
        assert (
            bounds(Problem.QRD, objective, QL.FO, Mode.COMBINED, lambda_zero=True)
            is CC.PSPACE_COMPLETE
        )

    @pytest.mark.parametrize("language", ALL)
    def test_data_tractable_decision(self, language):
        for objective in SUM_OBJECTIVES:
            assert (
                bounds(Problem.QRD, objective, language, Mode.DATA, lambda_zero=True)
                is CC.PTIME
            )
            assert (
                bounds(Problem.DRP, objective, language, Mode.DATA, lambda_zero=True)
                is CC.PTIME
            )

    @pytest.mark.parametrize("language", ALL)
    def test_data_counting_split(self, language):
        # RDC: #P-Turing for F_MS but FP for F_MM.
        assert (
            bounds(Problem.RDC, OK.MAX_SUM, language, Mode.DATA, lambda_zero=True)
            is CC.SHARP_P_TURING
        )
        assert (
            bounds(Problem.RDC, OK.MAX_MIN, language, Mode.DATA, lambda_zero=True)
            is CC.FP
        )

    @pytest.mark.parametrize("language", SMALL)
    def test_mono_combined_drops_to_np(self, language):
        assert (
            bounds(Problem.QRD, OK.MONO, language, Mode.COMBINED, lambda_zero=True)
            is CC.NP_COMPLETE
        )
        assert (
            bounds(Problem.DRP, OK.MONO, language, Mode.COMBINED, lambda_zero=True)
            is CC.CONP_COMPLETE
        )
        assert (
            bounds(Problem.RDC, OK.MONO, language, Mode.COMBINED, lambda_zero=True)
            is CC.SHARP_NP
        )

    def test_mono_combined_fo_stays_pspace(self):
        assert (
            bounds(Problem.QRD, OK.MONO, QL.FO, Mode.COMBINED, lambda_zero=True)
            is CC.PSPACE_COMPLETE
        )
        assert (
            bounds(Problem.RDC, OK.MONO, QL.FO, Mode.COMBINED, lambda_zero=True)
            is CC.SHARP_PSPACE
        )

    @pytest.mark.parametrize("language", ALL)
    def test_mono_data_unchanged(self, language):
        assert (
            bounds(Problem.QRD, OK.MONO, language, Mode.DATA, lambda_zero=True)
            is CC.PTIME
        )
        assert (
            bounds(Problem.RDC, OK.MONO, language, Mode.DATA, lambda_zero=True)
            is CC.SHARP_P_TURING
        )


class TestLambdaOne:
    """Theorem 8.3: dropping δ_rel changes nothing."""

    @pytest.mark.parametrize("problem", list(Problem))
    @pytest.mark.parametrize("objective", list(OK))
    @pytest.mark.parametrize("language", ALL)
    @pytest.mark.parametrize("mode", list(Mode))
    def test_identical_to_general(self, problem, objective, language, mode):
        general = bounds(problem, objective, language, mode)
        with_flag = bounds(problem, objective, language, mode, lambda_one=True)
        assert general is with_flag


class TestConstantK:
    """Corollary 8.4."""

    @pytest.mark.parametrize("objective", list(OK))
    @pytest.mark.parametrize("language", ALL)
    def test_data_tractable(self, objective, language):
        assert (
            bounds(Problem.QRD, objective, language, Mode.DATA, constant_k=True)
            is CC.PTIME
        )
        assert (
            bounds(Problem.DRP, objective, language, Mode.DATA, constant_k=True)
            is CC.PTIME
        )
        assert (
            bounds(Problem.RDC, objective, language, Mode.DATA, constant_k=True)
            is CC.FP
        )

    @pytest.mark.parametrize("problem", list(Problem))
    @pytest.mark.parametrize("objective", list(OK))
    @pytest.mark.parametrize("language", ALL)
    def test_combined_unchanged(self, problem, objective, language):
        general = bounds(problem, objective, language, Mode.COMBINED)
        with_flag = bounds(
            problem, objective, language, Mode.COMBINED, constant_k=True
        )
        assert general is with_flag


# ---------------------------------------------------------------------------
# Table III (constraints, Section 9)
# ---------------------------------------------------------------------------

class TestConstraints:
    @pytest.mark.parametrize("problem", list(Problem))
    @pytest.mark.parametrize("objective", list(OK))
    @pytest.mark.parametrize("language", ALL)
    def test_combined_unchanged(self, problem, objective, language):
        """Corollary 9.2."""
        general = bounds(problem, objective, language, Mode.COMBINED)
        with_sigma = bounds(
            problem, objective, language, Mode.COMBINED, with_constraints=True
        )
        assert general is with_sigma

    @pytest.mark.parametrize("language", ALL)
    def test_mono_data_flips_hard(self, language):
        """Theorem 9.3."""
        assert (
            bounds(Problem.QRD, OK.MONO, language, Mode.DATA, with_constraints=True)
            is CC.NP_COMPLETE
        )
        assert (
            bounds(Problem.DRP, OK.MONO, language, Mode.DATA, with_constraints=True)
            is CC.CONP_COMPLETE
        )
        assert (
            bounds(Problem.RDC, OK.MONO, language, Mode.DATA, with_constraints=True)
            is CC.SHARP_P_PARSIMONIOUS
        )

    @pytest.mark.parametrize("objective", SUM_OBJECTIVES)
    @pytest.mark.parametrize("language", ALL)
    def test_sum_data_unchanged(self, objective, language):
        """Theorem 9.3: F_MS / F_MM data complexity already intractable."""
        assert (
            bounds(Problem.QRD, objective, language, Mode.DATA, with_constraints=True)
            is CC.NP_COMPLETE
        )
        assert (
            bounds(Problem.RDC, objective, language, Mode.DATA, with_constraints=True)
            is CC.SHARP_P_PARSIMONIOUS
        )

    @pytest.mark.parametrize("mode", list(Mode))
    def test_identity_mono_flips(self, mode):
        """Corollary 9.4."""
        assert (
            bounds(Problem.QRD, OK.MONO, QL.IDENTITY, mode, with_constraints=True)
            is CC.NP_COMPLETE
        )
        assert (
            bounds(Problem.DRP, OK.MONO, QL.IDENTITY, mode, with_constraints=True)
            is CC.CONP_COMPLETE
        )
        assert (
            bounds(Problem.RDC, OK.MONO, QL.IDENTITY, mode, with_constraints=True)
            is CC.SHARP_P_PARSIMONIOUS
        )

    @pytest.mark.parametrize("mode", list(Mode))
    @pytest.mark.parametrize("objective", SUM_OBJECTIVES)
    def test_identity_sum_unchanged(self, mode, objective):
        """Corollary 9.4 (F_MS/F_MM part)."""
        assert (
            bounds(Problem.QRD, objective, QL.IDENTITY, mode, with_constraints=True)
            is CC.NP_COMPLETE
        )

    @pytest.mark.parametrize("objective", list(OK))
    @pytest.mark.parametrize("language", ALL)
    def test_lambda_zero_data_flips(self, objective, language):
        """Corollary 9.5: all three objectives flip at λ=0 under Σ."""
        assert (
            bounds(
                Problem.QRD, objective, language, Mode.DATA,
                lambda_zero=True, with_constraints=True,
            )
            is CC.NP_COMPLETE
        )
        assert (
            bounds(
                Problem.RDC, objective, language, Mode.DATA,
                lambda_zero=True, with_constraints=True,
            )
            is CC.SHARP_P_PARSIMONIOUS
        )

    @pytest.mark.parametrize("language", ALL)
    def test_lambda_one_mono_data_flips(self, language):
        """Corollary 9.6."""
        assert (
            bounds(
                Problem.QRD, OK.MONO, language, Mode.DATA,
                lambda_one=True, with_constraints=True,
            )
            is CC.NP_COMPLETE
        )

    @pytest.mark.parametrize("objective", SUM_OBJECTIVES)
    @pytest.mark.parametrize("language", ALL)
    def test_lambda_one_sum_data_unchanged(self, objective, language):
        """Corollary 9.6 (F_MS/F_MM part)."""
        assert (
            bounds(
                Problem.RDC, objective, language, Mode.DATA,
                lambda_one=True, with_constraints=True,
            )
            is CC.SHARP_P_PARSIMONIOUS
        )

    @pytest.mark.parametrize("objective", list(OK))
    @pytest.mark.parametrize("language", ALL)
    def test_constant_k_robust(self, objective, language):
        """Corollary 9.7."""
        assert (
            bounds(
                Problem.QRD, objective, language, Mode.DATA,
                constant_k=True, with_constraints=True,
            )
            is CC.PTIME
        )
        assert (
            bounds(
                Problem.RDC, objective, language, Mode.DATA,
                constant_k=True, with_constraints=True,
            )
            is CC.FP
        )


# ---------------------------------------------------------------------------
# Guard rails and rendering
# ---------------------------------------------------------------------------

class TestGuards:
    def test_lambda_conflict_rejected(self):
        with pytest.raises(SettingNotCovered):
            classify(
                Setting(
                    Problem.QRD, OK.MONO, QL.CQ, Mode.DATA,
                    lambda_zero=True, lambda_one=True,
                )
            )

    def test_identity_with_lambda_flag_not_covered(self):
        with pytest.raises(SettingNotCovered):
            classify(
                Setting(
                    Problem.QRD, OK.MAX_SUM, QL.IDENTITY, Mode.DATA,
                    lambda_zero=True,
                )
            )

    def test_tractable_property(self):
        assert CC.PTIME.tractable and CC.FP.tractable
        assert not CC.NP_COMPLETE.tractable


class TestRendering:
    def test_table1_has_five_rows(self):
        assert len(table1()) == 5

    def test_table2_has_five_rows(self):
        assert len(table2()) == 5

    def test_table3_has_four_rows(self):
        assert len(table3()) == 4

    def test_render_tables(self):
        text = render_table(table1(), "Table I")
        assert "PSPACE-complete" in text and "PTIME" in text

    @pytest.mark.parametrize("problem", list(Problem))
    def test_figure_maps_have_eleven_nodes(self, problem):
        assert len(figure_map(problem)) == 11

    @pytest.mark.parametrize("problem", list(Problem))
    def test_render_figure_maps(self, problem):
        assert "Figure" in render_figure_map(problem)

    def test_figure1_matches_paper_annotations(self):
        """Spot-check Figure 1's nodes against the printed figure."""
        nodes = {n.label: n.bound.complexity for n in figure_map(Problem.QRD)}
        assert nodes["F_MS/F_MM: FO, combined"] is CC.PSPACE_COMPLETE
        assert nodes["F_MS/F_MM: CQ/∃FO+, combined"] is CC.NP_COMPLETE
        assert nodes["F_MS/F_MM: λ=0, data"] is CC.PTIME
        assert nodes["F_mono: identity queries, combined"] is CC.PTIME

    def test_figure4_matches_paper_annotations(self):
        nodes = {n.label: n.bound.complexity for n in figure_map(Problem.RDC)}
        assert nodes["F_MS/F_MM: CQ/FO, data"] is CC.SHARP_P_PARSIMONIOUS
        assert nodes["F_mono: CQ/FO, data"] is CC.SHARP_P_TURING
        assert nodes["F_mono: CQ/FO, combined"] is CC.SHARP_PSPACE
