"""Tests for λ-sweeps and the Pareto frontier."""

import pytest

from repro.core.objectives import ObjectiveKind
from repro.core.tradeoff import (
    CriteriaPoint,
    all_points,
    criteria,
    lambda_sweep,
    pareto_front,
    render_sweep,
)
from repro.workloads.synthetic import random_instance
from tests.conftest import make_small_instance


class TestCriteria:
    def test_max_sum_coordinates(self, small_instance):
        subset = small_instance.answers()[:3]
        point = criteria(small_instance, subset)
        objective = small_instance.objective
        expected_rel = sum(
            objective.relevance(t, small_instance.query) for t in subset
        )
        assert point.relevance == pytest.approx(expected_rel)
        assert point.diversity >= 0

    def test_objective_is_scalarization(self, small_instance):
        """F_MS(U) = (k−1)(1−λ)·rel + λ·div must hold coordinate-wise."""
        subset = small_instance.answers()[:3]
        point = criteria(small_instance, subset)
        lam = small_instance.objective.lam
        k = len(subset)
        expected = (k - 1) * (1 - lam) * point.relevance + lam * point.diversity
        assert small_instance.value(subset) == pytest.approx(expected)

    def test_max_min_coordinates(self, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MAX_MIN
        )
        subset = instance.answers()[:3]
        point = criteria(instance, subset)
        lam = instance.objective.lam
        expected = (1 - lam) * point.relevance + lam * point.diversity
        assert instance.value(subset) == pytest.approx(expected)

    def test_mono_coordinates(self, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO
        )
        subset = instance.answers()[:3]
        point = criteria(instance, subset)
        lam = instance.objective.lam
        expected = (1 - lam) * point.relevance + lam * point.diversity
        assert instance.value(subset) == pytest.approx(expected)

    def test_dominance(self):
        a = CriteriaPoint(2.0, 3.0, ())
        b = CriteriaPoint(1.0, 3.0, ())
        c = CriteriaPoint(3.0, 1.0, ())
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c) and not c.dominates(a)
        assert not a.dominates(a)


class TestParetoFront:
    def test_front_is_nondominated(self, small_instance):
        front = pareto_front(small_instance)
        for p in front:
            for q in front:
                assert not p.dominates(q) or p is q

    def test_front_members_undominated_by_anything(self, small_instance):
        front = pareto_front(small_instance)
        points = all_points(small_instance)
        for p in front:
            assert not any(q.dominates(p) for q in points)

    def test_front_sorted_by_diversity(self, small_instance):
        front = pareto_front(small_instance)
        diversities = [p.diversity for p in front]
        assert diversities == sorted(diversities)

    def test_every_point_dominated_or_on_front(self, small_instance):
        front = pareto_front(small_instance)
        keys = {(round(p.relevance, 9), round(p.diversity, 9)) for p in front}
        for point in all_points(small_instance):
            on_front = (round(point.relevance, 9), round(point.diversity, 9)) in keys
            dominated = any(q.dominates(point) for q in front)
            assert on_front or dominated


class TestLambdaSweep:
    def test_endpoints(self, small_instance):
        entries = lambda_sweep(small_instance, grid=[0.0, 1.0])
        # λ=0 maximizes relevance; λ=1 maximizes diversity.
        rel_only, div_only = entries
        best_rel = max(p.relevance for p in all_points(small_instance))
        best_div = max(p.diversity for p in all_points(small_instance))
        assert rel_only.point.relevance == pytest.approx(best_rel)
        assert div_only.point.diversity == pytest.approx(best_div)

    @pytest.mark.parametrize("seed", range(3))
    def test_sweep_walks_the_front_monotonically(self, seed):
        instance = random_instance(
            n=10, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=seed
        )
        entries = lambda_sweep(instance, grid=[0.0, 0.25, 0.5, 0.75, 1.0])
        diversities = [e.point.diversity for e in entries]
        relevances = [e.point.relevance for e in entries]
        assert diversities == sorted(diversities)
        assert relevances == sorted(relevances, reverse=True)

    @pytest.mark.parametrize("seed", range(3))
    def test_interior_sweep_optima_are_pareto_optimal(self, seed):
        """Weighted-sum optima at 0 < λ < 1 are Pareto-optimal."""
        instance = random_instance(
            n=9, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=10 + seed
        )
        points = all_points(instance)
        for entry in lambda_sweep(instance, grid=[0.25, 0.5, 0.75]):
            assert not any(q.dominates(entry.point) for q in points)

    def test_invalid_grid_rejected(self, small_instance):
        with pytest.raises(ValueError):
            lambda_sweep(small_instance, grid=[0.5, 1.5])

    def test_infeasible_instance_rejected(self, small_db, items_schema):
        instance = make_small_instance(small_db, items_schema, k=10)
        with pytest.raises(ValueError, match="no candidate"):
            lambda_sweep(instance)

    def test_render(self, small_instance):
        text = render_sweep(lambda_sweep(small_instance, grid=[0.0, 1.0]))
        assert "λ" in text and "diversity" in text
