"""Tests for the top-level diversify/decide/rank/count facade."""

import pytest

from repro import core as api
from repro.core.constraints import ConstraintBuilder, ConstraintSet
from repro.core.objectives import ObjectiveKind
from tests.conftest import make_small_instance


class TestDiversify:
    def test_exact_matches_enumeration(self, small_instance):
        best = max(
            small_instance.value(s) for s in small_instance.candidate_sets()
        )
        result = api.diversify(small_instance, method="exact")
        assert result is not None
        assert result[0] == pytest.approx(best)

    @pytest.mark.parametrize("method", ["greedy", "mmr", "local-search"])
    def test_heuristics_return_candidate_sets(self, small_instance, method):
        result = api.diversify(small_instance, method=method)
        assert result is not None
        value, picks = result
        assert small_instance.is_candidate_set(picks)
        assert value == pytest.approx(small_instance.value(picks))

    def test_heuristics_below_exact(self, small_instance):
        exact = api.diversify(small_instance, method="exact")
        for method in ("greedy", "mmr", "local-search"):
            heuristic = api.diversify(small_instance, method=method)
            assert heuristic[0] <= exact[0] + 1e-9

    def test_mono_auto(self, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO
        )
        best = max(instance.value(s) for s in instance.candidate_sets())
        result = api.diversify(instance)
        assert result[0] == pytest.approx(best)

    def test_max_min_exact(self, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MAX_MIN
        )
        best = max(instance.value(s) for s in instance.candidate_sets())
        result = api.diversify(instance, method="exact")
        assert result[0] == pytest.approx(best)

    def test_greedy_rejects_constraints(self, small_instance):
        sigma = ConstraintSet([ConstraintBuilder.forbids_value("id", 1)])
        constrained = small_instance.with_constraints(sigma)
        with pytest.raises(ValueError):
            api.diversify(constrained, method="greedy")

    def test_local_search_respects_constraints(self, small_instance):
        sigma = ConstraintSet([ConstraintBuilder.forbids_value("id", 1)])
        constrained = small_instance.with_constraints(sigma)
        result = api.diversify(constrained, method="local-search")
        assert result is not None
        assert all(r["id"] != 1 for r in result[1])

    def test_no_candidate_sets_returns_none(self, small_db, items_schema):
        instance = make_small_instance(small_db, items_schema, k=10)
        assert api.diversify(instance) is None

    def test_unknown_method(self, small_instance):
        with pytest.raises(ValueError):
            api.diversify(small_instance, method="magic")


class TestDecisionFacade:
    def test_decide_and_witness(self, small_instance):
        best = api.diversify(small_instance, method="exact")[0]
        assert api.decide(small_instance, best)
        assert not api.decide(small_instance, best + 1.0)
        witness = api.witness(small_instance, best)
        assert witness is not None
        assert small_instance.value(witness) >= best - 1e-9

    def test_rank_and_top_r(self, small_instance):
        best = api.diversify(small_instance, method="exact")[1]
        assert api.rank(small_instance, best) == 1
        assert api.is_top_r(small_instance, best, 1)

    def test_count(self, small_instance):
        assert api.count(small_instance, 0.0) == 20

    def test_make_instance(self, small_db, items_schema):
        from repro.core.objectives import Objective
        from repro.core.functions import DistanceFunction, RelevanceFunction
        from repro.relational.queries import identity_query

        instance = api.make_instance(
            identity_query(items_schema),
            small_db,
            3,
            Objective.max_sum(
                RelevanceFunction.constant(1.0), DistanceFunction.constant(1.0), 0.5
            ),
        )
        assert instance.answer_count == 6
