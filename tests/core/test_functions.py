"""Tests for relevance and distance function wrappers."""

import pytest

from repro.core.functions import (
    DistanceFunction,
    FunctionPropertyError,
    RelevanceFunction,
    min_pairwise_distance,
    pairwise_distance_sum,
)
from repro.relational.schema import RelationSchema, Row

SCHEMA = RelationSchema("r", ("a", "b"))


def row(*values):
    return Row(SCHEMA, values)


class TestRelevance:
    def test_constant(self):
        rel = RelevanceFunction.constant(2.5)
        assert rel(row(1, 2)) == 2.5

    def test_negative_constant_rejected(self):
        with pytest.raises(FunctionPropertyError):
            RelevanceFunction.constant(-1.0)

    def test_from_table_with_default(self):
        rel = RelevanceFunction.from_table({(1, 2): 3.0}, default=0.5)
        assert rel(row(1, 2)) == 3.0
        assert rel(row(9, 9)) == 0.5

    def test_from_attribute(self):
        rel = RelevanceFunction.from_attribute("b")
        assert rel(row(1, 7)) == 7.0

    def test_from_attribute_missing_gives_default(self):
        rel = RelevanceFunction.from_attribute("zzz", default=1.5)
        assert rel(row(1, 2)) == 1.5

    def test_from_attribute_non_numeric_gives_default(self):
        rel = RelevanceFunction.from_attribute("b", default=0.25)
        assert rel(row(1, "text")) == 0.25

    def test_from_callable_one_arg(self):
        rel = RelevanceFunction.from_callable(lambda r: r["a"] * 2.0)
        assert rel(row(3, 0)) == 6.0

    def test_from_callable_two_args(self):
        rel = RelevanceFunction.from_callable(lambda r, q: 1.0)
        assert rel(row(1, 2), None) == 1.0

    def test_negative_result_rejected(self):
        rel = RelevanceFunction.from_callable(lambda r: -5.0)
        with pytest.raises(FunctionPropertyError):
            rel(row(1, 2))


class TestDistance:
    def test_diagonal_is_zero(self):
        dis = DistanceFunction.constant(5.0)
        assert dis(row(1, 2), row(1, 2)) == 0.0

    def test_constant_off_diagonal(self):
        dis = DistanceFunction.constant(5.0)
        assert dis(row(1, 2), row(3, 4)) == 5.0

    def test_symmetrization(self):
        # An asymmetric callable is forced symmetric.
        def asymmetric(left, right):
            return float(left["a"])

        dis = DistanceFunction.from_callable(asymmetric)
        a, b = row(1, 0), row(2, 0)
        assert dis(a, b) == dis(b, a)

    def test_from_table_either_order(self):
        dis = DistanceFunction.from_table({((1, 2), (3, 4)): 7.0})
        assert dis(row(1, 2), row(3, 4)) == 7.0
        assert dis(row(3, 4), row(1, 2)) == 7.0

    def test_from_table_default(self):
        dis = DistanceFunction.from_table({}, default=0.25)
        assert dis(row(1, 2), row(3, 4)) == 0.25

    def test_attribute_mismatch_all(self):
        dis = DistanceFunction.attribute_mismatch()
        assert dis(row(1, 2), row(1, 3)) == 1.0
        assert dis(row(0, 0), row(1, 1)) == 2.0

    def test_attribute_mismatch_subset(self):
        dis = DistanceFunction.attribute_mismatch(("a",))
        assert dis(row(1, 2), row(1, 99)) == 0.0

    def test_numeric_gap(self):
        dis = DistanceFunction.numeric_gap("b", scale=2.0)
        assert dis(row(0, 1), row(0, 4)) == 6.0

    def test_negative_distance_rejected(self):
        dis = DistanceFunction.from_callable(lambda a, b: -1.0)
        with pytest.raises(FunctionPropertyError):
            dis(row(1, 2), row(3, 4))


class TestAggregates:
    def test_pairwise_sum_ordered_pairs(self):
        dis = DistanceFunction.constant(1.0)
        rows = [row(i, 0) for i in range(4)]
        # 4 tuples, 12 ordered pairs at distance 1.
        assert pairwise_distance_sum(rows, dis) == 12.0

    def test_pairwise_sum_empty_and_singleton(self):
        dis = DistanceFunction.constant(1.0)
        assert pairwise_distance_sum([], dis) == 0.0
        assert pairwise_distance_sum([row(1, 1)], dis) == 0.0

    def test_min_pairwise(self):
        dis = DistanceFunction.numeric_gap("a")
        rows = [row(0, 0), row(3, 0), row(10, 0)]
        assert min_pairwise_distance(rows, dis) == 3.0

    def test_min_pairwise_singleton_convention(self):
        dis = DistanceFunction.constant(9.0)
        assert min_pairwise_distance([row(1, 1)], dis) == 0.0
