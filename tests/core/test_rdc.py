"""Tests for the RDC counters: brute force, the FP case (Theorem 8.2),
the pseudo-polynomial DP, and consistency with QRD."""

import math

import pytest

from repro.core.constraints import ConstraintBuilder, ConstraintSet
from repro.core.functions import DistanceFunction, RelevanceFunction
from repro.core.instance import DiversificationInstance
from repro.core.objectives import Objective, ObjectiveKind
from repro.core.qrd import qrd_brute_force
from repro.core.rdc import (
    count_max_min_relevance,
    count_modular_dp,
    rdc_brute_force,
    rdc_count,
)
from repro.relational.queries import identity_query
from repro.relational.schema import Database, Relation, RelationSchema
from tests.conftest import make_small_instance


def integer_score_instance(scores, k, kind=ObjectiveKind.MONO, lam=0.0):
    schema = RelationSchema("w", ("id", "s"))
    relation = Relation(schema, [(i, s) for i, s in enumerate(scores)])
    db = Database([relation])
    objective = Objective(
        kind,
        RelevanceFunction.from_attribute("s"),
        DistanceFunction.constant(0.0),
        lam,
    )
    return DiversificationInstance(identity_query(schema), db, k=k, objective=objective)


class TestBruteForce:
    def test_count_at_zero_bound(self, small_instance):
        assert rdc_brute_force(small_instance, 0.0) == 20  # C(6,3)

    def test_count_above_optimum_is_zero(self, small_instance):
        best = max(
            small_instance.value(s) for s in small_instance.candidate_sets()
        )
        assert rdc_brute_force(small_instance, best + 1e-6) == 0
        assert rdc_brute_force(small_instance, best) >= 1

    def test_monotone_in_bound(self, small_instance):
        values = sorted(
            {small_instance.value(s) for s in small_instance.candidate_sets()}
        )
        counts = [rdc_brute_force(small_instance, b) for b in values]
        assert counts == sorted(counts, reverse=True)

    def test_consistent_with_qrd(self, small_instance):
        for bound in (0.0, 10.0, 20.0, 40.0, 100.0):
            assert (rdc_brute_force(small_instance, bound) > 0) == qrd_brute_force(
                small_instance, bound
            )

    def test_respects_constraints(self, small_db, items_schema):
        sigma = ConstraintSet([ConstraintBuilder.forbids_value("id", 1)])
        constrained = make_small_instance(small_db, items_schema).with_constraints(sigma)
        assert rdc_brute_force(constrained, 0.0) == 10  # C(5,3)


class TestMaxMinRelevanceFP:
    def test_binomial_formula(self):
        instance = integer_score_instance(
            [9, 8, 7, 3, 2], k=2, kind=ObjectiveKind.MAX_MIN, lam=0.0
        )
        # Tuples with score ≥ 7: three of them → C(3,2) = 3.
        assert count_max_min_relevance(instance, 7.0) == 3
        assert count_max_min_relevance(instance, 1.0) == math.comb(5, 2)
        assert count_max_min_relevance(instance, 10.0) == 0

    def test_agrees_with_brute_force(self):
        instance = integer_score_instance(
            [5, 5, 4, 2, 1, 0], k=3, kind=ObjectiveKind.MAX_MIN, lam=0.0
        )
        for bound in (0.0, 1.0, 2.0, 4.0, 5.0, 6.0):
            assert count_max_min_relevance(instance, bound) == rdc_brute_force(
                instance, bound
            )

    def test_rejects_wrong_setting(self, small_instance):
        with pytest.raises(ValueError):
            count_max_min_relevance(small_instance, 1.0)


class TestModularDP:
    def test_matches_brute_force_mono(self):
        instance = integer_score_instance([3, 5, 2, 7, 5], k=2)
        for bound in range(0, 15):
            assert count_modular_dp(instance, float(bound)) == rdc_brute_force(
                instance, float(bound)
            )

    def test_matches_brute_force_max_sum_lambda0(self):
        instance = integer_score_instance(
            [3, 5, 2, 7], k=3, kind=ObjectiveKind.MAX_SUM, lam=0.0
        )
        # F_MS = (k−1)·Σ = 2·Σ.
        for bound in (0.0, 10.0, 20.0, 24.0, 28.0, 30.0, 31.0):
            assert count_modular_dp(instance, bound) == rdc_brute_force(
                instance, bound
            )

    def test_k_equals_one_max_sum(self):
        instance = integer_score_instance(
            [3, 5], k=1, kind=ObjectiveKind.MAX_SUM, lam=0.0
        )
        # (k−1) = 0 ⇒ F_MS ≡ 0.
        assert count_modular_dp(instance, 0.0) == 2
        assert count_modular_dp(instance, 0.5) == 0

    def test_zero_bound_counts_everything(self):
        instance = integer_score_instance([1, 2, 3, 4], k=2)
        assert count_modular_dp(instance, 0.0) == math.comb(4, 2)

    def test_non_integer_scores_rejected(self):
        instance = integer_score_instance([1.5, 2.25], k=1)
        with pytest.raises(ValueError, match="integral"):
            count_modular_dp(instance, 1.0)

    def test_scale_makes_fractional_scores_work(self):
        instance = integer_score_instance([1.5, 2.5, 0.5], k=2)
        assert count_modular_dp(instance, 3.0, scale=2) == rdc_brute_force(
            instance, 3.0
        )

    def test_fractional_bound(self):
        instance = integer_score_instance([1, 2, 3], k=1)
        # Σ ≥ 2.5 ⇔ Σ ≥ 3 for integer scores.
        assert count_modular_dp(instance, 2.5) == 1


class TestDispatch:
    def test_auto_uses_fp_counter(self):
        instance = integer_score_instance(
            [5, 4, 3], k=2, kind=ObjectiveKind.MAX_MIN, lam=0.0
        )
        assert rdc_count(instance, 4.0) == 1

    def test_method_selection(self):
        instance = integer_score_instance([3, 5, 2], k=2)
        assert rdc_count(instance, 7.0, method="modular-dp") == rdc_count(
            instance, 7.0, method="brute-force"
        )

    def test_unknown_method(self, small_instance):
        with pytest.raises(ValueError):
            rdc_count(small_instance, 0.0, method="magic")
