"""Tests for the DPLL SAT solver, cross-checked against brute force."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic.cnf import cnf, random_3cnf
from repro.logic.sat import brute_force_satisfiable, is_satisfiable, solve


class TestSolve:
    def test_trivially_satisfiable(self):
        assert is_satisfiable(cnf([1, 2], [-1, 2]))

    def test_unit_contradiction(self):
        assert not is_satisfiable(cnf([1], [-1]))

    def test_empty_formula_is_satisfiable(self):
        assert is_satisfiable(cnf(num_vars=3))

    def test_model_is_total_and_satisfying(self):
        f = cnf([1, 2, 3], [-1, -2], [2, -3], num_vars=4)
        model = solve(f)
        assert model is not None
        assert set(model) == {1, 2, 3, 4}
        assert f.satisfied_by(model)

    def test_classic_unsat_chain(self):
        # x1, x1→x2, x2→x3, ¬x3
        f = cnf([1], [-1, 2], [-2, 3], [-3])
        assert not is_satisfiable(f)

    def test_all_sign_patterns_unsat(self):
        clauses = []
        for mask in range(8):
            clause = tuple(
                (i + 1) if (mask >> i) & 1 else -(i + 1) for i in range(3)
            )
            clauses.append(clause)
        assert not is_satisfiable(cnf(*clauses))

    def test_pure_literal_case(self):
        f = cnf([1, 2], [1, 3], [1, -4])
        model = solve(f)
        assert model is not None and model[1] is True

    @pytest.mark.parametrize("seed", range(12))
    def test_agrees_with_brute_force_random(self, seed):
        rng = random.Random(seed)
        f = random_3cnf(5, 3 + seed, rng)
        assert is_satisfiable(f) == brute_force_satisfiable(f)


@st.composite
def small_cnf(draw):
    num_vars = draw(st.integers(1, 5))
    num_clauses = draw(st.integers(0, 8))
    clauses = []
    for _ in range(num_clauses):
        size = draw(st.integers(1, min(3, num_vars)))
        variables = draw(
            st.lists(
                st.integers(1, num_vars), min_size=size, max_size=size, unique=True
            )
        )
        clause = tuple(v if draw(st.booleans()) else -v for v in variables)
        clauses.append(clause)
    return cnf(*clauses, num_vars=num_vars)


@given(small_cnf())
@settings(max_examples=80)
def test_dpll_matches_brute_force(formula):
    assert is_satisfiable(formula) == brute_force_satisfiable(formula)


@given(small_cnf())
@settings(max_examples=80)
def test_returned_model_satisfies(formula):
    model = solve(formula)
    if model is not None:
        assert formula.satisfied_by(model)
