"""Tests for CNF formulas and 3SAT instances."""

import random

import pytest

from repro.logic.cnf import (
    FormulaError,
    ThreeSatInstance,
    all_assignments,
    cnf,
    random_3cnf,
)


class TestCNF:
    def test_construction_and_num_vars(self):
        f = cnf([1, -2], [3])
        assert f.num_vars == 3
        assert len(f.clauses) == 2

    def test_explicit_num_vars_extends(self):
        f = cnf([1], num_vars=5)
        assert f.num_vars == 5
        assert f.variables == (1, 2, 3, 4, 5)

    def test_zero_literal_rejected(self):
        with pytest.raises(FormulaError):
            cnf([0, 1])

    def test_satisfied_by(self):
        f = cnf([1, 2], [-1])
        assert f.satisfied_by({1: False, 2: True})
        assert not f.satisfied_by({1: True, 2: True})

    def test_is_3cnf(self):
        assert cnf([1, 2, 3]).is_3cnf()
        assert not cnf([1, 2, 3, 4]).is_3cnf()

    def test_restrict_drops_satisfied_clauses(self):
        f = cnf([1, 2], [-1, 3])
        g = f.restrict({1: True})
        assert g.clauses == ((3,),)

    def test_restrict_falsified_raises(self):
        f = cnf([1])
        with pytest.raises(FormulaError):
            f.restrict({1: False})

    def test_hashable_and_frozen(self):
        f = cnf([1, 2])
        assert hash(f) == hash(cnf([1, 2]))


class TestAssignments:
    def test_all_assignments_count(self):
        assert len(list(all_assignments([1, 2, 3]))) == 8

    def test_all_assignments_distinct(self):
        seen = {tuple(sorted(a.items())) for a in all_assignments([1, 2])}
        assert len(seen) == 4

    def test_all_assignments_empty(self):
        assignments = list(all_assignments([]))
        assert assignments == [{}]


class TestRandom3CNF:
    def test_shape(self):
        f = random_3cnf(6, 10, random.Random(1))
        assert f.num_vars == 6
        assert len(f.clauses) == 10
        assert all(len(c) == 3 for c in f.clauses)

    def test_distinct_variables_per_clause(self):
        f = random_3cnf(5, 20, random.Random(2))
        for clause in f.clauses:
            assert len({abs(lit) for lit in clause}) == 3

    def test_deterministic_under_seed(self):
        a = random_3cnf(5, 8, random.Random(7))
        b = random_3cnf(5, 8, random.Random(7))
        assert a == b

    def test_too_few_variables_rejected(self):
        with pytest.raises(FormulaError):
            random_3cnf(2, 3)


class TestThreeSat:
    def test_valid_instance(self):
        inst = ThreeSatInstance(cnf([1, 2, 3], [-1, -2]))
        assert inst.num_vars == 3
        assert len(inst.clauses) == 2

    def test_oversized_clause_rejected(self):
        with pytest.raises(FormulaError):
            ThreeSatInstance(cnf([1, 2, 3, 4]))
