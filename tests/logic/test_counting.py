"""Tests for #SAT and #Σ₁SAT counters."""

import random

import pytest

from repro.logic.cnf import all_assignments, cnf, random_3cnf
from repro.logic.counting import (
    brute_force_count,
    count_models,
    count_sigma1,
    sigma1_holds,
)
from repro.logic.sat import is_satisfiable


class TestCountModels:
    def test_single_clause(self):
        # x1 ∨ x2 over 2 vars: 3 models.
        assert count_models(cnf([1, 2])) == 3

    def test_contradiction(self):
        assert count_models(cnf([1], [-1])) == 0

    def test_free_variables_double_count(self):
        # x1 over 3 variables: x1=True, x2/x3 free → 4 models.
        assert count_models(cnf([1], num_vars=3)) == 4

    def test_empty_formula(self):
        assert count_models(cnf(num_vars=4)) == 16

    def test_xor_like(self):
        f = cnf([1, 2], [-1, -2])
        assert count_models(f) == 2

    def test_scope_mismatch_raises(self):
        with pytest.raises(ValueError):
            count_models(cnf([3]), variables=[1, 2])

    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_brute_force(self, seed):
        f = random_3cnf(5, 4 + seed % 4, random.Random(seed))
        assert count_models(f) == brute_force_count(f)

    def test_count_positive_iff_satisfiable(self):
        for seed in range(8):
            f = random_3cnf(4, 6, random.Random(seed + 100))
            assert (count_models(f) > 0) == is_satisfiable(f)


class TestSigma1:
    def test_simple_projection(self):
        # ϕ(X={1}, Y={2}) = ∃x1 (x1 ∨ y2): every Y assignment works.
        assert count_sigma1(cnf([1, 2]), [1], [2]) == 2

    def test_forcing_y(self):
        # ∃x1 (x1 ∧ ¬x1 ∨ ...) — make X irrelevant and Y forced:
        # clauses: (y2), (x1 ∨ ¬x1) trivially true.
        assert count_sigma1(cnf([2], num_vars=2), [1], [2]) == 1

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            count_sigma1(cnf([1, 2]), [1], [1, 2])

    def test_stray_variable_rejected(self):
        with pytest.raises(ValueError):
            count_sigma1(cnf([3]), [1], [2])

    def test_matches_direct_enumeration(self):
        f = cnf([1, 3], [-1, 2, -4], [2, -3], num_vars=4)
        x_vars, y_vars = [1, 2], [3, 4]
        expected = 0
        for y_assignment in all_assignments(y_vars):
            if sigma1_holds(f, x_vars, y_assignment):
                expected += 1
        assert count_sigma1(f, x_vars, y_vars) == expected

    def test_empty_x_reduces_to_sat_per_assignment(self):
        f = cnf([1, 2], num_vars=2)
        assert count_sigma1(f, [], [1, 2]) == 3

    @pytest.mark.parametrize("seed", range(6))
    def test_random_agreement_with_definition(self, seed):
        f = random_3cnf(5, 5, random.Random(seed))
        x_vars, y_vars = [1, 2], [3, 4, 5]
        expected = sum(
            1
            for ya in all_assignments(y_vars)
            if sigma1_holds(f, x_vars, ya)
        )
        assert count_sigma1(f, x_vars, y_vars) == expected
