"""Tests for QBF evaluation, Q3SAT and #QBF counting."""

import random

import pytest

from repro.logic.cnf import FormulaError, all_assignments, cnf, random_3cnf
from repro.logic.qbf import (
    A,
    E,
    QBF,
    brute_force_qbf,
    count_qbf,
    evaluate_qbf,
    q3sat,
    qbf_inner_true,
    suffix_true,
)


class TestQBFEvaluation:
    def test_exists_true(self):
        # ∃x1 (x1)
        assert evaluate_qbf(QBF(((E, 1),), cnf([1])))

    def test_forall_false(self):
        # ∀x1 (x1)
        assert not evaluate_qbf(QBF(((A, 1),), cnf([1])))

    def test_forall_tautology(self):
        # ∀x1 (x1 ∨ ¬x1)
        assert evaluate_qbf(QBF(((A, 1),), cnf([1, -1])))

    def test_alternation(self):
        # ∀x1 ∃x2 (x1 ↔ x2) as CNF (x̄1∨x2)∧(x1∨x̄2)
        f = QBF(((A, 1), (E, 2)), cnf([-1, 2], [1, -2]))
        assert evaluate_qbf(f)

    def test_alternation_reversed_fails(self):
        # ∃x2 ∀x1 (x1 ↔ x2) is false
        f = QBF(((E, 2), (A, 1)), cnf([-1, 2], [1, -2]))
        assert not evaluate_qbf(f)

    def test_unbound_matrix_variable_rejected(self):
        with pytest.raises(FormulaError):
            QBF(((E, 1),), cnf([2]))

    def test_duplicate_prefix_variable_rejected(self):
        with pytest.raises(FormulaError):
            QBF(((E, 1), (A, 1)), cnf([1]))

    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        matrix = random_3cnf(5, 4, rng)
        quantifiers = [rng.choice([E, A]) for _ in range(5)]
        f = q3sat(quantifiers, matrix).formula
        assert evaluate_qbf(f) == brute_force_qbf(f)


class TestSuffixTrue:
    def test_full_prefix_evaluates_matrix(self):
        f = QBF(((E, 1), (A, 2)), cnf([1, 2]))
        assert suffix_true(f, (True, False))
        assert not suffix_true(f, (False, False))

    def test_empty_prefix_is_whole_formula(self):
        f = QBF(((E, 1),), cnf([1]))
        assert suffix_true(f, ()) == evaluate_qbf(f)

    def test_prefix_too_long_rejected(self):
        f = QBF(((E, 1),), cnf([1]))
        with pytest.raises(FormulaError):
            suffix_true(f, (True, False))

    def test_suffix_matches_semantics(self):
        # ∃x1 ∀x2 ∃x3 ψ; check level-1 suffixes by brute force.
        matrix = cnf([1, 2, -3], [-2, 3])
        f = QBF(((E, 1), (A, 2), (E, 3)), matrix)
        for x1 in (False, True):
            expected = all(
                any(
                    matrix.satisfied_by({1: x1, 2: x2, 3: x3})
                    for x3 in (False, True)
                )
                for x2 in (False, True)
            )
            assert suffix_true(f, (x1,)) == expected


class TestQ3Sat:
    def test_matrix_must_be_3cnf(self):
        with pytest.raises(FormulaError):
            q3sat([E, E, E, E], cnf([1, 2, 3, 4]))

    def test_is_true(self):
        inst = q3sat([E, A], cnf([1, 2], [1, -2]))
        assert inst.is_true()  # x1 = 1 satisfies both for all x2


class TestCountQBF:
    def test_counts_x_witnesses(self):
        # ∃X={1} ∀y2 (x1 ∨ (y2 ∨ ¬y2)) — both x1 values work → 2
        matrix = cnf([1, 2, -2])
        assert count_qbf(matrix, [1], [(A, 2)]) == 2

    def test_forall_blocks(self):
        # ∀y2 (x1 ∧ y2 …): matrix (y2) fails for y2=0 → 0 witnesses
        matrix = cnf([2], num_vars=2)
        assert count_qbf(matrix, [1], [(A, 2)]) == 0

    def test_matches_direct_enumeration(self):
        matrix = cnf([1, 3], [-1, 2, 4], [-3, -4], num_vars=4)
        y_prefix = [(A, 3), (E, 4)]
        expected = sum(
            1
            for xa in all_assignments([1, 2])
            if qbf_inner_true(matrix, y_prefix, xa)
        )
        assert count_qbf(matrix, [1, 2], y_prefix) == expected

    def test_overlap_rejected(self):
        with pytest.raises(FormulaError):
            count_qbf(cnf([1]), [1], [(A, 1)])
