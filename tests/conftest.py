"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.functions import DistanceFunction, RelevanceFunction
from repro.core.instance import DiversificationInstance
from repro.core.objectives import Objective, ObjectiveKind
from repro.relational.queries import identity_query
from repro.relational.schema import Database, Relation, RelationSchema


@pytest.fixture
def items_schema() -> RelationSchema:
    return RelationSchema("items", ("id", "category", "score"))


@pytest.fixture
def small_db(items_schema: RelationSchema) -> Database:
    """Six items over three categories with distinct scores."""
    relation = Relation(
        items_schema,
        [
            (1, "a", 9.0),
            (2, "a", 7.0),
            (3, "b", 6.0),
            (4, "b", 4.0),
            (5, "c", 8.0),
            (6, "c", 2.0),
        ],
    )
    return Database([relation])


def category_distance() -> DistanceFunction:
    def func(left, right):
        return 1.0 if left["category"] != right["category"] else 0.0

    return DistanceFunction.from_callable(func, name="category")


def make_small_instance(
    db: Database,
    schema: RelationSchema,
    kind: ObjectiveKind = ObjectiveKind.MAX_SUM,
    lam: float = 0.5,
    k: int = 3,
) -> DiversificationInstance:
    objective = Objective(
        kind,
        RelevanceFunction.from_attribute("score"),
        category_distance(),
        lam,
    )
    return DiversificationInstance(identity_query(schema), db, k=k, objective=objective)


@pytest.fixture
def small_instance(small_db, items_schema) -> DiversificationInstance:
    return make_small_instance(small_db, items_schema)
