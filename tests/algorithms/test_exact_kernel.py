"""Kernel-backed exact search: branch-and-bound vs enumeration.

The exact optimizers are now index-based selectors over a
:class:`ScoringKernel`; these tests pin that the kernel-array bound
computation of ``branch_and_bound_max_sum`` still finds the same optimum
as plain enumeration on randomized instances, under both kernel
backends, with and without duplicated snapshot rows — and that a shared
kernel (the engine's cached shape) gives the same answers as per-call
builds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.exact import (
    best_modular,
    branch_and_bound_max_sum,
    exhaustive_best,
    optimal_value,
)
from repro.core.objectives import ObjectiveKind
from repro.engine import ScoringKernel, numpy_available
from repro.workloads.synthetic import random_instance

BACKENDS = [False] + ([True] if numpy_available() else [])

LAMBDAS = [0.0, 0.25, 0.5, 0.75, 1.0]


def with_duplicates(instance, extra=(0, 2, 2)):
    answers = instance.answers()
    instance._result_cache = answers + [answers[i] for i in extra]
    return instance


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("lam", LAMBDAS)
@pytest.mark.parametrize("seed", range(4))
def test_branch_and_bound_matches_exhaustive(seed, lam, use_numpy):
    instance = random_instance(n=9, k=3, kind=ObjectiveKind.MAX_SUM, lam=lam, seed=seed)
    kernel = ScoringKernel(instance, use_numpy=use_numpy)
    bb = branch_and_bound_max_sum(instance, kernel)
    brute = exhaustive_best(instance, kernel)
    assert bb is not None and brute is not None
    assert bb[0] == pytest.approx(brute[0], rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("lam", [0.0, 0.5, 1.0])
@pytest.mark.parametrize("seed", range(3))
def test_branch_and_bound_matches_exhaustive_with_duplicates(seed, lam, use_numpy):
    """Duplicated snapshot rows: enumeration dedups to value-distinct
    candidate sets; B&B works over positions.  Zero-distance twins add
    nothing to F_MS, so the optima coincide."""
    instance = with_duplicates(
        random_instance(n=8, k=3, kind=ObjectiveKind.MAX_SUM, lam=lam, seed=seed)
    )
    kernel = ScoringKernel(instance, use_numpy=use_numpy)
    bb = branch_and_bound_max_sum(instance, kernel)
    brute = exhaustive_best(instance, kernel)
    assert bb is not None and brute is not None
    assert bb[0] == pytest.approx(brute[0], rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("kind", [ObjectiveKind.MONO, ObjectiveKind.MAX_SUM])
def test_modular_matches_exhaustive_on_shared_kernel(kind, use_numpy):
    lam = 0.6 if kind is ObjectiveKind.MONO else 0.0
    instance = random_instance(n=10, k=3, kind=kind, lam=lam, seed=11)
    kernel = ScoringKernel(instance, use_numpy=use_numpy)
    modular = best_modular(instance, kernel)
    brute = exhaustive_best(instance, kernel)
    assert modular[0] == pytest.approx(brute[0], rel=1e-9, abs=1e-9)


def test_shared_kernel_equals_per_call_builds():
    instance = random_instance(n=9, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.4, seed=7)
    kernel = ScoringKernel(instance, use_numpy=False)
    assert branch_and_bound_max_sum(instance, kernel) == branch_and_bound_max_sum(
        instance
    )
    assert exhaustive_best(instance, kernel) == exhaustive_best(instance)
    assert optimal_value(instance, kernel) == optimal_value(instance)


@pytest.mark.skipif(not numpy_available(), reason="requires numpy")
@pytest.mark.parametrize("lam", [0.0, 0.5, 1.0])
def test_exact_backends_agree(lam):
    instance = random_instance(n=9, k=3, kind=ObjectiveKind.MAX_SUM, lam=lam, seed=3)
    py = branch_and_bound_max_sum(instance, ScoringKernel(instance, use_numpy=False))
    np_ = branch_and_bound_max_sum(instance, ScoringKernel(instance, use_numpy=True))
    assert py[1] == np_[1]
    assert py[0] == pytest.approx(np_[0], rel=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=10),
    k=st.integers(min_value=1, max_value=4),
    lam=st.sampled_from(LAMBDAS),
    seed=st.integers(min_value=0, max_value=10_000),
    dups=st.lists(st.integers(min_value=0, max_value=2), max_size=3),
)
def test_hypothesis_branch_and_bound_parity(n, k, lam, seed, dups):
    if k > n:
        k = n
    instance = random_instance(n=n, k=k, kind=ObjectiveKind.MAX_SUM, lam=lam, seed=seed)
    if dups:
        with_duplicates(instance, extra=tuple(dups))
    for use_numpy in BACKENDS:
        kernel = ScoringKernel(instance, use_numpy=use_numpy)
        bb = branch_and_bound_max_sum(instance, kernel)
        brute = exhaustive_best(instance, kernel)
        assert (bb is None) == (brute is None)
        if bb is not None:
            assert bb[0] == pytest.approx(brute[0], rel=1e-9, abs=1e-9)
