"""Tests for the exact optimizers (enumeration, branch & bound, modular)."""

import pytest

from repro.algorithms.exact import (
    best_modular,
    branch_and_bound_max_sum,
    exhaustive_best,
    optimal_value,
)
from repro.core.constraints import ConstraintBuilder, ConstraintSet
from repro.core.objectives import ObjectiveKind
from repro.workloads.synthetic import random_instance
from tests.conftest import make_small_instance


class TestExhaustive:
    def test_finds_optimum(self, small_instance):
        best = exhaustive_best(small_instance)
        assert best is not None
        expected = max(
            small_instance.value(s) for s in small_instance.candidate_sets()
        )
        assert best[0] == pytest.approx(expected)

    def test_returns_none_when_infeasible(self, small_db, items_schema):
        instance = make_small_instance(small_db, items_schema, k=10)
        assert exhaustive_best(instance) is None

    def test_respects_constraints(self, small_instance):
        sigma = ConstraintSet([ConstraintBuilder.forbids_value("id", 1)])
        constrained = small_instance.with_constraints(sigma)
        best = exhaustive_best(constrained)
        assert best is not None
        assert all(r["id"] != 1 for r in best[1])


class TestBranchAndBound:
    @pytest.mark.parametrize("lam", [0.0, 0.3, 0.7, 1.0])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_exhaustive(self, lam, seed):
        instance = random_instance(
            n=9, k=3, kind=ObjectiveKind.MAX_SUM, lam=lam, seed=seed
        )
        bb = branch_and_bound_max_sum(instance)
        brute = exhaustive_best(instance)
        assert bb is not None and brute is not None
        assert bb[0] == pytest.approx(brute[0])

    def test_requires_max_sum(self, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MAX_MIN
        )
        with pytest.raises(ValueError):
            branch_and_bound_max_sum(instance)

    def test_infeasible_returns_none(self, small_db, items_schema):
        instance = make_small_instance(small_db, items_schema, k=10)
        assert branch_and_bound_max_sum(instance) is None

    def test_k_equals_n(self):
        instance = random_instance(n=5, k=5, kind=ObjectiveKind.MAX_SUM, seed=1)
        bb = branch_and_bound_max_sum(instance)
        brute = exhaustive_best(instance)
        assert bb[0] == pytest.approx(brute[0])


class TestModular:
    def test_matches_exhaustive_mono(self, small_db, items_schema):
        instance = make_small_instance(
            small_db, items_schema, kind=ObjectiveKind.MONO, lam=0.6
        )
        modular = best_modular(instance)
        brute = exhaustive_best(instance)
        assert modular[0] == pytest.approx(brute[0])

    def test_rejects_non_modular(self, small_instance):
        with pytest.raises(ValueError):
            best_modular(small_instance)


class TestOptimalValue:
    @pytest.mark.parametrize("kind", list(ObjectiveKind))
    def test_dispatch_consistency(self, kind, small_db, items_schema):
        instance = make_small_instance(small_db, items_schema, kind=kind, lam=0.5)
        value = optimal_value(instance)
        expected = max(
            instance.value(s) for s in instance.candidate_sets()
        )
        assert value == pytest.approx(expected)

    def test_none_when_infeasible(self, small_db, items_schema):
        instance = make_small_instance(small_db, items_schema, k=10)
        assert optimal_value(instance) is None
