"""Solution maintenance: repair_after_delta parity with from-scratch.

The guarantee: whatever repair_after_delta returns — kept or re-run —
must equal running the algorithm from scratch on the post-delta
instance, across randomized insert/delete traces; and the fast path
must actually fire (the point of maintenance is skipping re-runs).
"""

import pytest

from repro.algorithms.incremental import RepairResult, repair_after_delta
from repro.core.instance import DiversificationInstance
from repro.core.objectives import Objective
from repro.engine import (
    ALGORITHMS,
    EngineError,
    KernelDelta,
    ScoringKernel,
    delta_for_instance,
    numpy_available,
)
from repro.workloads.streaming import StreamingWebSearch

BACKENDS = [False] + ([True] if numpy_available() else [])


def drive(algorithm, use_numpy, events=40, num_docs=30, k=5, lam=0.5, seed=29):
    """Random trace; after each event, repair and solve from scratch."""
    workload = StreamingWebSearch(num_docs=num_docs, num_intents=5, seed=seed)
    instance = workload.make_instance(k=k, lam=lam)
    kernel = ScoringKernel(instance, use_numpy=use_numpy)
    solver = ALGORITHMS[algorithm]
    previous = solver(instance, kernel)[1]
    kept = reran = 0
    for _ in range(events):
        workload.step()
        instance.invalidate_cache()
        delta = delta_for_instance(kernel, instance)
        kernel.apply_delta(delta.inserted, delta.deleted)
        repaired = repair_after_delta(
            instance, kernel, previous, delta, algorithm=algorithm
        )
        scratch = solver(instance, kernel)
        assert repaired.rows == scratch[1], repaired.reason
        assert repaired.value == pytest.approx(scratch[0], rel=1e-12, abs=1e-12)
        kept += not repaired.reran
        reran += repaired.reran
        previous = repaired.rows
    return kept, reran


class TestParity:
    @pytest.mark.parametrize("use_numpy", BACKENDS)
    @pytest.mark.parametrize("lam", [0.0, 0.5, 1.0])
    def test_mmr_trace_parity(self, lam, use_numpy):
        kept, reran = drive("mmr", use_numpy, lam=lam)
        assert kept + reran == 40

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mmr_fast_path_fires(self, seed):
        kept, _ = drive("mmr", False, seed=seed)
        assert kept > 0  # maintenance must actually save re-runs

    def test_greedy_max_min_trace_parity(self):
        workload = StreamingWebSearch(num_docs=25, num_intents=5, seed=31)
        objective = Objective.max_min(workload.relevance, workload.distance, lam=0.5)
        instance = DiversificationInstance(
            workload.query, workload.db, k=4, objective=objective
        )
        kernel = ScoringKernel(instance, use_numpy=False)
        solver = ALGORITHMS["greedy_max_min"]
        previous = solver(instance, kernel)[1]
        for _ in range(30):
            workload.step()
            instance.invalidate_cache()
            delta = delta_for_instance(kernel, instance)
            kernel.apply_delta(delta.inserted, delta.deleted)
            repaired = repair_after_delta(
                instance, kernel, previous, delta, algorithm="greedy_max_min"
            )
            scratch = solver(instance, kernel)
            assert repaired.rows == scratch[1], repaired.reason
            previous = repaired.rows

    def test_modular_top_k_trace_parity(self):
        workload = StreamingWebSearch(num_docs=25, num_intents=5, seed=37)
        instance = workload.make_instance(k=5, lam=0.0)  # modular F_MS
        kernel = ScoringKernel(instance, use_numpy=False)
        solver = ALGORITHMS["modular_top_k"]
        previous = solver(instance, kernel)[1]
        kept = 0
        for _ in range(30):
            workload.step()
            instance.invalidate_cache()
            delta = delta_for_instance(kernel, instance)
            kernel.apply_delta(delta.inserted, delta.deleted)
            repaired = repair_after_delta(
                instance, kernel, previous, delta, algorithm="modular_top_k"
            )
            scratch = solver(instance, kernel)
            assert repaired.rows == scratch[1], repaired.reason
            kept += not repaired.reran
            previous = repaired.rows
        assert kept > 0

    def test_pair_greedy_reruns_on_insertions(self):
        """No sound insertion bound for pair-greedy: parity comes from
        re-running, and deletions of never-selected rows are kept."""
        workload = StreamingWebSearch(num_docs=25, num_intents=5, seed=41)
        instance = workload.make_instance(k=4)
        kernel = ScoringKernel(instance, use_numpy=False)
        solver = ALGORITHMS["greedy_max_sum"]
        previous = solver(instance, kernel)[1]
        for _ in range(25):
            workload.step()
            instance.invalidate_cache()
            delta = delta_for_instance(kernel, instance)
            kernel.apply_delta(delta.inserted, delta.deleted)
            repaired = repair_after_delta(
                instance, kernel, previous, delta, algorithm="greedy_max_sum"
            )
            scratch = solver(instance, kernel)
            assert repaired.rows == scratch[1], repaired.reason
            if delta.inserted:
                assert repaired.reran
            previous = repaired.rows


class TestDecisions:
    def make(self, k=4, lam=0.5, seed=43):
        workload = StreamingWebSearch(num_docs=20, num_intents=4, seed=seed)
        instance = workload.make_instance(k=k, lam=lam)
        kernel = ScoringKernel(instance, use_numpy=False)
        previous = ALGORITHMS["mmr"](instance, kernel)[1]
        return workload, instance, kernel, previous

    def test_empty_delta_keeps(self):
        _, instance, kernel, previous = self.make()
        delta = KernelDelta((), (), kernel.n, kernel.n)
        repaired = repair_after_delta(instance, kernel, previous, delta, "mmr")
        assert not repaired.reran
        assert repaired.rows == previous

    def test_deleted_selected_row_reruns(self):
        workload, instance, kernel, previous = self.make()
        event = workload.retire(previous[0]["doc"])
        assert event.op == "delete"
        instance.invalidate_cache()
        delta = delta_for_instance(kernel, instance)
        kernel.apply_delta(delta.inserted, delta.deleted)
        repaired = repair_after_delta(instance, kernel, previous, delta, "mmr")
        assert repaired.reran
        assert repaired.reason == "a deleted row was selected"

    def test_local_search_reruns_on_any_delta(self):
        """Local search's seed-and-swap trajectory shifts when any row
        order changes — even deletion of a never-selected row — so no
        keep path is sound (parity with from-scratch over a trace)."""
        workload = StreamingWebSearch(num_docs=14, num_intents=5, seed=8)
        instance = workload.make_instance(k=4, lam=0.9)
        kernel = ScoringKernel(instance, use_numpy=False)
        solver = ALGORITHMS["local_search"]
        previous = solver(instance, kernel)[1]
        for _ in range(12):
            workload.step()
            instance.invalidate_cache()
            delta = delta_for_instance(kernel, instance)
            kernel.apply_delta(delta.inserted, delta.deleted)
            repaired = repair_after_delta(
                instance, kernel, previous, delta, "local_search"
            )
            assert repaired.reran
            scratch = solver(instance, kernel)
            assert repaired.rows == scratch[1]
            previous = repaired.rows

    def test_mono_always_reruns_on_delta(self):
        workload = StreamingWebSearch(num_docs=15, num_intents=4, seed=47)
        objective = Objective.mono(workload.relevance, workload.distance, lam=0.5)
        instance = DiversificationInstance(
            workload.query, workload.db, k=3, objective=objective
        )
        kernel = ScoringKernel(instance, use_numpy=False)
        previous = ALGORITHMS["modular_top_k"](instance, kernel)[1]
        workload.step()
        instance.invalidate_cache()
        delta = delta_for_instance(kernel, instance)
        kernel.apply_delta(delta.inserted, delta.deleted)
        repaired = repair_after_delta(
            instance, kernel, previous, delta, "modular_top_k"
        )
        assert repaired.reran
        scratch = ALGORITHMS["modular_top_k"](instance, kernel)
        assert repaired.rows == scratch[1]

    def test_stale_kernel_rejected(self):
        _, instance, kernel, previous = self.make()
        delta = KernelDelta((), (), kernel.n, kernel.n + 1)
        with pytest.raises(ValueError):
            repair_after_delta(instance, kernel, previous, delta, "mmr")

    def test_unknown_algorithm_rejected(self):
        _, instance, kernel, previous = self.make()
        delta = KernelDelta((), (), kernel.n, kernel.n)
        with pytest.raises(EngineError):
            repair_after_delta(instance, kernel, previous, delta, "nope")

    def test_returns_none_when_k_exceeds_pool(self):
        workload, instance, kernel, previous = self.make(k=4)
        while len(workload.live_docs) > 3:
            workload.retire(workload.live_docs[0])
        instance.invalidate_cache()
        delta = delta_for_instance(kernel, instance)
        kernel.apply_delta(delta.inserted, delta.deleted)
        assert repair_after_delta(instance, kernel, previous, delta, "mmr") is None

    def test_repr(self):
        result = RepairResult(1.5, (), False, "empty delta")
        assert "kept" in repr(result)

    def test_duplicate_selection_marginal_not_inflated(self):
        """A duplicate-bearing selection maps twin picks to one kernel
        index; the marginal must exclude members by *position* so the
        0-distance to a twin is seen (novelty 0), otherwise an inserted
        row landing under the inflated marginal is wrongly kept."""
        import statistics

        from repro.core.objectives import ObjectiveKind
        from repro.relational.schema import Row
        from repro.workloads.synthetic import random_instance

        instance = random_instance(
            n=3, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=8
        )
        answers = instance.answers()
        instance._result_cache = answers + answers  # duplicate-heavy pool
        kernel = ScoringKernel(instance, use_numpy=False)
        previous = ALGORITHMS["mmr"](instance, kernel)[1]
        prev_idx = [kernel.index_of(r) for r in previous]
        assert len(set(prev_idx)) < len(prev_idx)  # a twin was picked
        # Insert a mid-pool row at the centroid: its bound sits between
        # the correct (twin-aware) marginal and the inflated one, so
        # only position-based exclusion triggers the re-run.
        cx = statistics.mean(a["x"] for a in answers)
        cy = statistics.mean(a["y"] for a in answers)
        new_row = Row(answers[0].schema, (99, "zz", 0.5, cx, cy))
        kernel.apply_delta((new_row,), ())
        instance._result_cache = list(kernel.answers)
        delta = KernelDelta((new_row,), (), 6, 7)
        repaired = repair_after_delta(instance, kernel, previous, delta, "mmr")
        assert repaired.reran
        assert repaired.reason == "an inserted row's bound beats the current marginal"
        scratch = ALGORITHMS["mmr"](instance, kernel)
        assert repaired.rows == scratch[1]
