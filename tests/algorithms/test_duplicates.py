"""Duplicate-row correctness: direct path == kernel path for every
registered algorithm when the answer set carries duplicated tuples.

Query evaluation is set-semantics, so a materialized Q(D) never carries
duplicates on its own — but kernels and algorithms accept any snapshot
(user-built instances, future bag-semantics queries), and the historical
direct-path bookkeeping removed candidates *by equality*, dropping every
copy of a picked row at once: MMR could crash on its ``best_tuple is not
None`` assertion, and the greedy loops silently diverged from the
index-based kernel path.  These tests pin the physical-row contract:
each answer position is its own candidate, and both paths agree.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objectives import ObjectiveKind
from repro.engine import ALGORITHMS, ScoringKernel, numpy_available
from repro.workloads.synthetic import random_instance

BACKENDS = [False] + ([True] if numpy_available() else [])

KIND_FOR = {
    "greedy_max_min": ObjectiveKind.MAX_MIN,
    "modular_top_k": ObjectiveKind.MONO,
}


def instance_with_duplicates(algorithm, seed, lam=0.5, n=10, k=4, extra=(0, 3, 3)):
    kind = KIND_FOR.get(algorithm, ObjectiveKind.MAX_SUM)
    instance = random_instance(n=n, k=k, kind=kind, lam=lam, seed=seed)
    answers = instance.answers()
    # Inject duplicated rows directly into the materialization cache —
    # the only way duplicates can reach algorithms today, and the shape
    # any future bag-semantics evaluation would produce.
    instance._result_cache = answers + [answers[i] for i in extra]
    return instance


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("seed", range(3))
def test_direct_equals_kernel_with_duplicates(algorithm, seed, use_numpy):
    instance = instance_with_duplicates(algorithm, seed)
    func = ALGORITHMS[algorithm]
    direct = func(instance, None)
    kernel = ScoringKernel(instance, use_numpy=use_numpy)
    routed = func(instance, kernel)
    assert (direct is None) == (routed is None)
    if direct is None:
        return
    assert routed[1] == direct[1]
    assert routed[0] == pytest.approx(direct[0], rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("algorithm", ["mmr", "greedy_max_sum", "greedy_max_min"])
def test_duplicate_heavy_pool_does_not_crash(algorithm):
    """Fewer distinct values than k, but enough positions: the old
    equality-based removal starved the pool and crashed MMR here."""
    kind = KIND_FOR.get(algorithm, ObjectiveKind.MAX_SUM)
    instance = random_instance(n=3, k=4, kind=kind, lam=0.5, seed=8)
    answers = instance.answers()
    instance._result_cache = answers + answers  # 6 positions, 3 values
    func = ALGORITHMS[algorithm]
    direct = func(instance, None)
    routed = func(instance, ScoringKernel(instance, use_numpy=False))
    assert direct is not None and routed is not None
    assert direct[1] == routed[1]
    assert len(direct[1]) == 4


def test_local_search_returns_none_without_distinct_candidate_set():
    """Candidate sets are value-distinct; a duplicate-heavy pool with
    fewer distinct values than k has none, on both paths."""
    instance = random_instance(n=3, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=8)
    answers = instance.answers()
    instance._result_cache = answers + answers
    assert ALGORITHMS["local_search"](instance, None) is None
    assert (
        ALGORITHMS["local_search"](
            instance, ScoringKernel(instance, use_numpy=False)
        )
        is None
    )


def test_candidate_sets_skip_duplicate_values():
    instance = random_instance(n=4, k=2, seed=5)
    answers = instance.answers()
    instance._result_cache = answers + [answers[0]]
    seen = set()
    for combo in instance.candidate_sets():
        assert len(set(combo)) == 2
        assert instance.is_candidate_set(combo)
        # Each value-distinct set appears exactly once — enumeration
        # counters (#RDC) must not double-count duplicate positions.
        key = frozenset(combo)
        assert key not in seen
        seen.add(key)
    assert len(seen) == 6  # C(4, 2) over the distinct values


def test_kernel_index_of_first_occurrence():
    instance = random_instance(n=6, k=2, seed=4)
    answers = instance.answers()
    instance._result_cache = [answers[0]] + answers  # answers[0] at 0 and 1
    kernel = ScoringKernel(instance, use_numpy=False)
    assert kernel.index_of(answers[0]) == 0
    # Every first occurrence round-trips to its position.
    seen = set()
    for i, row in enumerate(kernel.answers):
        if row not in seen:
            assert kernel.index_of(row) == i
            seen.add(row)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    lam=st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
    dup_positions=st.lists(
        st.integers(min_value=0, max_value=7), min_size=1, max_size=5
    ),
)
def test_hypothesis_duplicate_parity(seed, lam, dup_positions):
    for algorithm in ("mmr", "greedy_max_sum", "greedy_marginal_max_sum"):
        instance = instance_with_duplicates(
            algorithm, seed, lam=lam, n=8, k=3, extra=tuple(dup_positions)
        )
        func = ALGORITHMS[algorithm]
        direct = func(instance, None)
        for use_numpy in BACKENDS:
            routed = func(instance, ScoringKernel(instance, use_numpy=use_numpy))
            assert routed[1] == direct[1]
            assert routed[0] == pytest.approx(direct[0], rel=1e-9, abs=1e-9)
