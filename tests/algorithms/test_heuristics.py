"""Tests for greedy, MMR and local-search heuristics, including the
2-approximation guarantee of greedy max-sum on metric instances."""

import pytest

from repro.algorithms.exact import optimal_value
from repro.algorithms.greedy import (
    greedy_marginal_max_sum,
    greedy_max_min,
    greedy_max_sum,
)
from repro.algorithms.local_search import local_search
from repro.algorithms.mmr import mmr_select
from repro.core.constraints import ConstraintBuilder, ConstraintSet
from repro.core.objectives import ObjectiveKind
from repro.workloads.synthetic import random_instance
from tests.conftest import make_small_instance


class TestGreedyMaxSum:
    @pytest.mark.parametrize("seed", range(6))
    def test_two_approximation_on_metric_instances(self, seed):
        """Euclidean δ_dis is a metric, so the pair-greedy is within ½
        of the optimum (Hassin et al. / Gollapudi & Sharma)."""
        instance = random_instance(
            n=10, k=4, kind=ObjectiveKind.MAX_SUM, lam=1.0, seed=seed
        )
        greedy = greedy_max_sum(instance)
        optimum = optimal_value(instance)
        assert greedy is not None and optimum is not None
        assert greedy[0] >= 0.5 * optimum - 1e-9

    def test_returns_k_distinct_tuples(self):
        instance = random_instance(n=9, k=5, kind=ObjectiveKind.MAX_SUM, seed=3)
        result = greedy_max_sum(instance)
        assert result is not None
        assert len(set(result[1])) == 5

    def test_odd_k(self):
        instance = random_instance(n=9, k=3, kind=ObjectiveKind.MAX_SUM, seed=5)
        result = greedy_max_sum(instance)
        assert result is not None and len(result[1]) == 3

    def test_k_one_takes_most_relevant(self):
        instance = random_instance(n=8, k=1, kind=ObjectiveKind.MAX_SUM, lam=0.3, seed=2)
        result = greedy_max_sum(instance)
        best_rel = max(
            instance.objective.relevance(t, instance.query)
            for t in instance.answers()
        )
        chosen_rel = instance.objective.relevance(result[1][0], instance.query)
        assert chosen_rel == pytest.approx(best_rel)

    def test_infeasible_returns_none(self):
        instance = random_instance(n=3, k=5, kind=ObjectiveKind.MAX_SUM, seed=0)
        assert greedy_max_sum(instance) is None

    def test_wrong_objective_rejected(self, small_db, items_schema):
        instance = make_small_instance(small_db, items_schema, kind=ObjectiveKind.MAX_MIN)
        with pytest.raises(ValueError):
            greedy_max_sum(instance)


class TestGreedyMaxMin:
    @pytest.mark.parametrize("seed", range(6))
    def test_two_approximation_at_lambda_one(self, seed):
        """Max-min dispersion greedy is a 2-approximation for metric
        distances when only diversity counts."""
        instance = random_instance(
            n=10, k=4, kind=ObjectiveKind.MAX_MIN, lam=1.0, seed=seed
        )
        greedy = greedy_max_min(instance)
        optimum = optimal_value(instance)
        assert greedy[0] >= 0.5 * optimum - 1e-9

    def test_seeds_with_most_relevant(self):
        instance = random_instance(n=8, k=3, kind=ObjectiveKind.MAX_MIN, lam=0.4, seed=1)
        result = greedy_max_min(instance)
        first = result[1][0]
        best_rel = max(
            instance.objective.relevance(t, instance.query)
            for t in instance.answers()
        )
        assert instance.objective.relevance(first, instance.query) == pytest.approx(
            best_rel
        )

    def test_wrong_objective_rejected(self, small_instance):
        with pytest.raises(ValueError):
            greedy_max_min(small_instance)


class TestMarginalGreedy:
    @pytest.mark.parametrize("seed", range(4))
    def test_reasonable_quality(self, seed):
        instance = random_instance(
            n=10, k=4, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=seed
        )
        result = greedy_marginal_max_sum(instance)
        optimum = optimal_value(instance)
        assert result[0] >= 0.4 * optimum  # loose sanity bound


class TestMMR:
    def test_first_pick_by_relevance(self, small_instance):
        result = mmr_select(small_instance)
        assert result[1][0]["id"] == 1  # score 9.0

    def test_lambda_override(self, small_instance):
        by_relevance = mmr_select(small_instance, lam=0.0)
        ids = [r["id"] for r in by_relevance[1]]
        assert ids == [1, 5, 2]  # scores 9, 8, 7

    def test_invalid_lambda(self, small_instance):
        with pytest.raises(ValueError):
            mmr_select(small_instance, lam=2.0)

    def test_infeasible(self, small_db, items_schema):
        instance = make_small_instance(small_db, items_schema, k=10)
        assert mmr_select(instance) is None

    @pytest.mark.parametrize("kind", list(ObjectiveKind))
    def test_score_is_instance_value(self, kind, small_db, items_schema):
        instance = make_small_instance(small_db, items_schema, kind=kind)
        value, picks = mmr_select(instance)
        assert value == pytest.approx(instance.value(picks))


class TestLocalSearch:
    @pytest.mark.parametrize("seed", range(4))
    def test_improves_or_matches_seed(self, seed):
        instance = random_instance(
            n=9, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=seed
        )
        seed_set = tuple(instance.answers()[:3])
        result = local_search(instance, seed=seed_set)
        assert result[0] >= instance.value(seed_set) - 1e-12

    def test_local_optimality(self):
        instance = random_instance(n=8, k=3, kind=ObjectiveKind.MAX_SUM, seed=7)
        value, picks = local_search(instance)
        chosen = set(picks)
        for i, old in enumerate(picks):
            for new in instance.answers():
                if new in chosen:
                    continue
                trial = list(picks)
                trial[i] = new
                assert instance.value(trial) <= value + 1e-9

    def test_respects_constraints(self, small_instance):
        sigma = ConstraintSet([ConstraintBuilder.forbids_value("id", 1)])
        constrained = small_instance.with_constraints(sigma)
        result = local_search(constrained)
        assert all(r["id"] != 1 for r in result[1])

    def test_invalid_seed_rejected(self, small_instance):
        bad_seed = tuple(small_instance.answers()[:2])
        with pytest.raises(ValueError):
            local_search(small_instance, seed=bad_seed)

    def test_matches_optimum_on_small_instances(self):
        """Not guaranteed in general, but on these small instances local
        search from the greedy seed reaches the optimum."""
        hits = 0
        for seed in range(5):
            instance = random_instance(
                n=7, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.5, seed=seed
            )
            result = local_search(instance)
            optimum = optimal_value(instance)
            if result[0] >= optimum - 1e-9:
                hits += 1
        assert hits >= 3
