"""Negative-relevance regression: every registered algorithm must
select correctly when δ_rel is negative everywhere.

The paper defines δ_rel as non-negative and the wrapped
:class:`RelevanceFunction` enforces that — but learned scorers routinely
emit raw logits / centered scores, and the historical direct-path loops
seeded their running maxima with ``-1.0`` sentinels (``best_weight``,
``best_score``, ``best_gain``), which crash (no candidate ever beats the
sentinel) or mis-select as soon as scores go negative.  The unified
kernel substrate seeds with ``-inf`` / first-candidate semantics, so the
whole ``ALGORITHMS`` table must now handle signed scores; these tests
pin that.
"""

import pytest

from repro.core.functions import DistanceFunction, RelevanceFunction
from repro.core.instance import DiversificationInstance
from repro.core.objectives import Objective, ObjectiveKind
from repro.engine import ALGORITHMS, ScoringKernel, numpy_available
from repro.relational.queries import identity_query
from repro.relational.schema import Database, Relation, RelationSchema

BACKENDS = [False] + ([True] if numpy_available() else [])

ITEMS = RelationSchema("signed", ("id", "score", "x"))


class SignedRelevance(RelevanceFunction):
    """A relevance wrapper that admits negative scores (raw logits)."""

    def __call__(self, row, query=None):
        return float(self._func(row, query))


def signed_instance(kind, lam, k=3, n=6):
    """All-negative relevance, distances small enough that every
    combined candidate score stays below the old ``-1.0`` sentinels."""
    rows = [(i, -5.0 + 0.5 * i, float(i)) for i in range(n)]
    db = Database([Relation(ITEMS, rows)])
    objective = Objective(
        kind,
        SignedRelevance(lambda row, query: row["score"], name="signed"),
        DistanceFunction.numeric_gap("x", scale=0.01),
        lam,
    )
    return DiversificationInstance(identity_query(ITEMS), db, k=k, objective=objective)


def kind_and_lambda(algorithm):
    if algorithm == "greedy_max_min":
        return ObjectiveKind.MAX_MIN, 0.5
    if algorithm == "modular_top_k":
        return ObjectiveKind.MAX_SUM, 0.0  # relevance-only modular F_MS
    return ObjectiveKind.MAX_SUM, 0.5


@pytest.mark.parametrize("use_numpy", BACKENDS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_algorithm_selects_under_negative_relevance(algorithm, use_numpy):
    kind, lam = kind_and_lambda(algorithm)
    instance = signed_instance(kind, lam)
    func = ALGORITHMS[algorithm]
    for kernel in (None, ScoringKernel(instance, use_numpy=use_numpy)):
        result = func(instance, kernel)
        assert result is not None, f"{algorithm} found no selection"
        value, rows = result
        assert len(rows) == instance.k
        assert len(set(rows)) == instance.k
        assert value == pytest.approx(instance.value(rows), rel=1e-9, abs=1e-9)


@pytest.mark.parametrize(
    "algorithm", ["modular_top_k", "greedy_marginal_max_sum", "mmr"]
)
def test_relevance_only_selection_picks_least_negative(algorithm):
    """At λ = 0 the optimum is the k least-negative scores — exactly the
    candidates a ``-1.0`` sentinel scan can never admit."""
    instance = signed_instance(ObjectiveKind.MAX_SUM, 0.0, k=3, n=6)
    result = ALGORITHMS[algorithm](instance, None)
    assert result is not None
    picked = sorted(row["id"] for row in result[1])
    assert picked == [3, 4, 5]


def test_greedy_max_min_seeds_with_most_relevant_negative():
    instance = signed_instance(ObjectiveKind.MAX_MIN, 0.5, k=2, n=5)
    result = ALGORITHMS["greedy_max_min"](instance, None)
    assert result is not None
    # The GMC seed is argmax δ_rel = the least-negative row (id 4).
    assert result[1][0]["id"] == 4


@pytest.mark.parametrize("use_numpy", BACKENDS)
def test_exact_optimizers_agree_under_negative_relevance(use_numpy):
    instance = signed_instance(ObjectiveKind.MAX_SUM, 0.5, k=3, n=7)
    kernel = ScoringKernel(instance, use_numpy=use_numpy)
    exhaustive = ALGORITHMS["exhaustive"](instance, kernel)
    bnb = ALGORITHMS["branch_and_bound_max_sum"](instance, kernel)
    assert exhaustive is not None and bnb is not None
    assert bnb[0] == pytest.approx(exhaustive[0], rel=1e-9, abs=1e-9)
    # B&B visits candidates in bound order, so only the *set* is pinned.
    assert set(bnb[1]) == set(exhaustive[1])
