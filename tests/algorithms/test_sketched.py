"""Sketched selection: certificates, landmark strategies, streaming.

The approximation contract (ISSUE 7): a sketched selector's reported
``value`` is the **exact** objective of the set it returns, and its
certificate brackets every sketch-bound evaluation of that set —
``lower ≤ value ≤ upper`` — because the landmark columns are exact
distances and the bounds are triangle-inequality consequences.  These
properties must hold across workloads, backends, landmark strategies
and duplicated answer rows; and the sketched plan must never
materialize a full distance matrix while doing it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.sketched import (
    select_sketched_marginal_max_sum,
    select_sketched_max_min,
    select_sketched_mmr,
)
from repro.algorithms.streaming import (
    StreamingGreedySelector,
    select_streaming_greedy,
)
from repro.algorithms.substrate import ApproxCertificate, KernelAccess
from repro.core.objectives import ObjectiveError, ObjectiveKind
from repro.core.providers import LANDMARK_STRATEGIES, ProviderError
from repro.engine import ScoringKernel, SketchedStorage, numpy_available
from repro.workloads.streaming import StreamingWebSearch
from repro.workloads.synthetic import random_instance

BACKENDS = [False] + ([True] if numpy_available() else [])

SELECTORS = {
    ObjectiveKind.MAX_SUM: select_sketched_marginal_max_sum,
    ObjectiveKind.MAX_MIN: select_sketched_max_min,
}


def sketched_kernel(instance, use_numpy, **knobs):
    return ScoringKernel(
        instance, use_numpy=use_numpy, storage="sketched", **knobs
    )


def with_duplicates(instance, extra=(0, 2, 2)):
    answers = instance.answers()
    instance._result_cache = answers + [answers[i] for i in extra]
    return instance


class TestCertificateBracket:
    """lower ≤ exact F ≤ upper, for every selected set, every plan."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 50),
        lam=st.sampled_from([0.2, 0.5, 0.8, 1.0]),
        kind=st.sampled_from([ObjectiveKind.MAX_SUM, ObjectiveKind.MAX_MIN]),
        strategy=st.sampled_from(LANDMARK_STRATEGIES),
        duplicates=st.booleans(),
        use_numpy=st.sampled_from(BACKENDS),
    )
    def test_bracket_property(
        self, seed, lam, kind, strategy, duplicates, use_numpy
    ):
        instance = random_instance(n=18, k=4, kind=kind, lam=lam, seed=seed)
        if duplicates:
            instance = with_duplicates(instance)
        kernel = sketched_kernel(
            instance, use_numpy, sketch_columns=5, landmarks=strategy
        )
        selection = SELECTORS[kind](kernel, instance.objective, instance.k)
        assert selection is not None
        cert = selection.certificate
        assert cert.columns == 5
        assert cert.strategy == strategy
        assert cert.lower <= selection.value + 1e-9
        assert selection.value <= cert.upper + 1e-9
        assert not kernel.distances_materialized
        # The reported value is the exact objective of the returned set
        # (the k×k rescoring path, which never touches a full matrix).
        assert selection.value == pytest.approx(
            kernel.selected_value(list(selection.indices), instance.objective),
            rel=1e-9,
            abs=1e-9,
        )

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_bounds_bracket_true_distance_pairwise(self, use_numpy):
        """The storage-level guarantee behind the certificate: for every
        pair, lower_bound ≤ δ_dis ≤ upper_bound (euclidean is a metric)."""
        instance = random_instance(n=24, k=4, seed=7)
        kernel = sketched_kernel(instance, use_numpy, sketch_columns=6)
        sketch = kernel.sketch()
        assert isinstance(sketch, SketchedStorage)
        provider = instance.objective.provider
        answers = instance.answers()
        for i in range(kernel.n):
            for j in range(kernel.n):
                true = float(provider.distance_at(answers[i], answers[j]))
                assert sketch.lower_bound(i, j) <= true + 1e-9
                assert true <= sketch.upper_bound(i, j) + 1e-9

    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_mmr_certificate(self, use_numpy):
        instance = random_instance(n=20, k=5, lam=0.6, seed=13)
        kernel = sketched_kernel(instance, use_numpy)
        selection = select_sketched_mmr(kernel, instance.objective, instance.k)
        cert = selection.certificate
        assert cert.lower <= selection.value <= cert.upper + 1e-9
        assert len(selection.rows) == 5
        assert not kernel.distances_materialized

    def test_backends_agree(self):
        if not numpy_available():
            pytest.skip("needs numpy")
        instance = random_instance(n=30, k=5, lam=0.5, seed=3)
        picks = []
        for use_numpy in (False, True):
            kernel = sketched_kernel(instance, use_numpy, sketch_columns=7)
            selection = select_sketched_marginal_max_sum(
                kernel, instance.objective, instance.k
            )
            picks.append(selection.indices)
        assert picks[0] == picks[1]

    def test_certificate_roundtrip(self):
        cert = ApproxCertificate(
            lower=1.0, value=2.0, upper=3.0, columns=4, strategy="uniform"
        )
        assert ApproxCertificate.from_dict(cert.to_dict()) == cert


class TestLandmarks:
    @pytest.mark.parametrize("strategy", LANDMARK_STRATEGIES)
    def test_strategies_deterministic_sorted_distinct(self, strategy):
        instance = random_instance(n=20, k=4, seed=5)
        provider = instance.objective.provider
        rows = instance.answers()
        rel = [provider.relevance_at(r, instance.query) for r in rows]
        first = provider.select_landmarks(rows, rel, 6, strategy=strategy)
        second = provider.select_landmarks(rows, rel, 6, strategy=strategy)
        assert first == second
        assert len(set(first)) == len(first)
        assert len(first) == 6
        assert all(0 <= p < len(rows) for p in first)

    def test_m_at_least_n_returns_all(self):
        instance = random_instance(n=6, k=2, seed=0)
        provider = instance.objective.provider
        rows = instance.answers()
        rel = [1.0] * len(rows)
        assert provider.select_landmarks(rows, rel, 99) == list(range(6))

    def test_too_few_landmarks_rejected(self):
        instance = random_instance(n=6, k=2, seed=0)
        provider = instance.objective.provider
        rows = instance.answers()
        with pytest.raises(ProviderError):
            provider.select_landmarks(rows, [1.0] * len(rows), 1)

    def test_unknown_strategy_rejected(self):
        instance = random_instance(n=6, k=2, seed=0)
        provider = instance.objective.provider
        rows = instance.answers()
        with pytest.raises(ProviderError):
            provider.select_landmarks(rows, [1.0] * 6, 3, strategy="grid")


class TestSketchMaintenance:
    @pytest.mark.parametrize("use_numpy", BACKENDS)
    def test_sketch_survives_delta(self, use_numpy):
        """apply_delta remaps surviving landmark columns in place; the
        patched sketch's bounds still bracket the true distances."""
        workload = StreamingWebSearch(num_docs=25, seed=11)
        instance = workload.make_instance(k=4, lam=0.5)
        kernel = ScoringKernel(
            instance, use_numpy=use_numpy, storage="sketched", sketch_columns=6
        )
        kernel.sketch()
        for _ in range(4):
            workload.step()
        instance.invalidate_cache()
        from repro.engine import delta_for_instance

        delta = delta_for_instance(kernel, instance)
        kernel.apply_delta(delta.inserted, delta.deleted)
        sketch = kernel.sketch()
        answers = kernel.answers
        provider = instance.objective.provider
        for i in range(0, kernel.n, 3):
            for j in range(0, kernel.n, 3):
                true = float(provider.distance_at(answers[i], answers[j]))
                assert sketch.lower_bound(i, j) <= true + 1e-9
                assert true <= sketch.upper_bound(i, j) + 1e-9
        assert not kernel.distances_materialized


class TestStreamingSelector:
    def _drive(self, num_docs=30, events=40, k=5, lam=0.5, seed=23):
        stream = StreamingWebSearch(num_docs=num_docs, seed=seed)
        result = select_streaming_greedy(stream, k=k, lam=lam, events=events)
        return result

    def test_streaming_selects_k_with_exact_certificate(self):
        result = self._drive()
        assert len(result.rows) == 5
        cert = result.certificate
        assert cert.strategy == "streaming"
        assert cert.lower == result.value == cert.upper

    def test_streaming_state_is_bounded(self):
        stream = StreamingWebSearch(num_docs=60, seed=5)
        instance = stream.make_instance(k=4, lam=0.5)
        selector = StreamingGreedySelector(
            stream.provider, stream.query, instance.objective, 4
        )
        for row in instance.answers():
            selector.offer(row)
        assert selector.peak_state <= 4 + selector.reservoir_size
        assert selector.offered == len(instance.answers())

    def test_streaming_value_is_exact(self):
        """The selector's value equals a from-scratch evaluation of its
        selected rows through the provider."""
        stream = StreamingWebSearch(num_docs=20, seed=9)
        instance = stream.make_instance(k=4, lam=0.6)
        selector = StreamingGreedySelector(
            stream.provider, stream.query, instance.objective, 4
        )
        for row in instance.answers():
            selector.offer(row)
        result = selector.result()
        assert result.value == pytest.approx(
            instance.objective.value(result.rows, instance.query), rel=1e-9
        )

    def test_retire_selected_row_refills(self):
        stream = StreamingWebSearch(num_docs=30, seed=2)
        instance = stream.make_instance(k=3, lam=0.5)
        selector = StreamingGreedySelector(
            stream.provider, stream.query, instance.objective, 3
        )
        for row in instance.answers():
            selector.offer(row)
        member = selector.result().rows[0]
        assert selector.retire(member)
        assert member not in selector.result().rows
        # The reservoir refilled the vacancy.
        assert len(selector.result().rows) == 3

    def test_modular_objective_rejected(self):
        stream = StreamingWebSearch(num_docs=10, seed=1)
        instance = stream.make_instance(k=3)
        objective = instance.objective.with_lambda(0.0)
        mono = random_instance(n=5, k=2, kind=ObjectiveKind.MONO, seed=0)
        with pytest.raises(ObjectiveError):
            StreamingGreedySelector(
                stream.provider, stream.query, mono.objective, 3
            )
        # λ = 0 F_MS is fine — still a submodular-style swap objective.
        StreamingGreedySelector(stream.provider, stream.query, objective, 3)

    def test_declared_access_is_rows_only(self):
        assert select_streaming_greedy.kernel_access == KernelAccess.ROWS_ONLY
