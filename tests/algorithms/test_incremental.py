"""Tests for early-termination diversification (the paper's motivation
for taking Q and D as input rather than Q(D))."""

import pytest

from repro.algorithms.exact import best_modular
from repro.algorithms.incremental import early_termination_top_k, streaming_qrd
from repro.core.constraints import ConstraintBuilder, ConstraintSet
from repro.core.objectives import ObjectiveKind
from repro.core.qrd import qrd_modular
from repro.workloads.synthetic import random_instance


class TestEarlyTerminationTopK:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_exact_optimum(self, seed):
        instance = random_instance(
            n=30, k=5, kind=ObjectiveKind.MONO, lam=0.5, seed=seed
        )
        early = early_termination_top_k(instance)
        exact = best_modular(instance)
        assert early is not None and exact is not None
        assert early.value == pytest.approx(exact[0])

    def test_consumes_at_most_everything(self):
        instance = random_instance(n=25, k=4, kind=ObjectiveKind.MONO, seed=1)
        early = early_termination_top_k(instance)
        assert early.consumed <= early.total
        assert 0.0 <= early.savings < 1.0

    def test_stops_early_on_sorted_stream(self):
        """With exact sorted scores the scan stops right after k+1 tuples
        (the k collected plus the witness that no later tuple competes)."""
        instance = random_instance(n=40, k=5, kind=ObjectiveKind.MONO, seed=2)
        early = early_termination_top_k(instance)
        assert early.consumed <= 6

    def test_infeasible_returns_none(self):
        instance = random_instance(n=3, k=5, kind=ObjectiveKind.MONO, seed=0)
        assert early_termination_top_k(instance) is None

    def test_rejects_non_modular(self, small_instance):
        with pytest.raises(ValueError, match="modular"):
            early_termination_top_k(small_instance)

    def test_rejects_constraints(self):
        instance = random_instance(n=10, k=3, kind=ObjectiveKind.MONO, seed=3)
        sigma = ConstraintSet([ConstraintBuilder.forbids_value("id", 0)])
        with pytest.raises(ValueError, match="constraints"):
            early_termination_top_k(instance.with_constraints(sigma))

    def test_slack_consumes_more(self):
        instance = random_instance(n=30, k=4, kind=ObjectiveKind.MONO, seed=4)
        tight = early_termination_top_k(instance, slack=0.0)
        loose = early_termination_top_k(instance, slack=100.0)
        assert loose.consumed >= tight.consumed
        assert loose.value == pytest.approx(tight.value)


class TestStreamingQRD:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("bound", [0.0, 5.0, 20.0, 1e6])
    def test_agrees_with_ptime_solver(self, seed, bound):
        instance = random_instance(
            n=20, k=4, kind=ObjectiveKind.MONO, lam=0.5, seed=seed
        )
        answer, consumed = streaming_qrd(instance, bound)
        assert answer == qrd_modular(instance, bound)
        assert consumed <= instance.answer_count

    def test_yes_consumes_exactly_k(self):
        instance = random_instance(n=30, k=5, kind=ObjectiveKind.MONO, seed=1)
        answer, consumed = streaming_qrd(instance, 0.0)
        assert answer and consumed == 5

    def test_early_no_before_k(self):
        """An unreachable bound is refuted from the very first tuple."""
        instance = random_instance(n=30, k=5, kind=ObjectiveKind.MONO, seed=1)
        answer, consumed = streaming_qrd(instance, 1e9)
        assert not answer and consumed < 5

    def test_max_sum_lambda0_scaling(self):
        instance = random_instance(
            n=15, k=3, kind=ObjectiveKind.MAX_SUM, lam=0.0, seed=2
        )
        for bound in (0.0, 10.0, 1e6):
            answer, _ = streaming_qrd(instance, bound)
            assert answer == qrd_modular(instance, bound)

    def test_insufficient_answers(self):
        instance = random_instance(n=3, k=5, kind=ObjectiveKind.MONO, seed=0)
        answer, consumed = streaming_qrd(instance, 0.0)
        assert not answer and consumed == 3

    def test_rejects_non_modular(self, small_instance):
        with pytest.raises(ValueError):
            streaming_qrd(small_instance, 1.0)
