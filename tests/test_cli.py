"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


@pytest.fixture
def db_json(tmp_path):
    data = {
        "relations": [
            {
                "name": "items",
                "attributes": ["id", "category", "score"],
                "rows": [
                    [1, "a", 9],
                    [2, "a", 7],
                    [3, "b", 6],
                    [4, "b", 4],
                    [5, "c", 8],
                ],
            }
        ]
    }
    path = tmp_path / "db.json"
    path.write_text(json.dumps(data))
    return str(path)


class TestInformational:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "PSPACE-complete" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 4" in out
        assert "δ(t1, t2)" in out  # Figure 2 report

    def test_verify(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "10/10 reductions verified" in out
        assert "FAIL" not in out


class TestDiversify:
    def test_basic_run(self, db_json, capsys):
        code = main(
            [
                "diversify",
                "--db", db_json,
                "--query", "Q(X, C, S) :- items(X, C, S)",
                "-k", "3",
                "--objective", "max-sum",
                "--lambda", "0.5",
                "--relevance-attr", "S",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "F = " in out
        assert out.count("X=") == 3

    def test_mono_objective(self, db_json, capsys):
        code = main(
            [
                "diversify",
                "--db", db_json,
                "--query", "Q(X, C, S) :- items(X, C, S)",
                "-k", "2",
                "--objective", "mono",
                "--relevance-attr", "S",
                "--distance-attrs", "C",
            ]
        )
        assert code == 0
        assert "F_mono" in capsys.readouterr().out

    def test_greedy_method(self, db_json, capsys):
        code = main(
            [
                "diversify",
                "--db", db_json,
                "--query", "Q(X, C, S) :- items(X, C, S)",
                "-k", "2",
                "--method", "greedy",
            ]
        )
        assert code == 0

    def test_infeasible_k(self, db_json, capsys):
        code = main(
            [
                "diversify",
                "--db", db_json,
                "--query", "Q(X, C, S) :- items(X, C, S)",
                "-k", "99",
            ]
        )
        assert code == 1
        assert "no 99-subset" in capsys.readouterr().out

    def test_csv_directory(self, tmp_path, capsys):
        (tmp_path / "edge.csv").write_text("src,dst\n1,2\n2,3\n1,3\n")
        code = main(
            [
                "diversify",
                "--db", str(tmp_path),
                "--query", "Q(X, Y) :- edge(X, Y)",
                "-k", "2",
            ]
        )
        assert code == 0

    def test_query_with_filter(self, db_json, capsys):
        code = main(
            [
                "diversify",
                "--db", db_json,
                "--query", "Q(X, C, S) :- items(X, C, S), S >= 7",
                "-k", "2",
                "--relevance-attr", "S",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Only items with score ≥ 7 may appear (ids 1, 2, 5).
        assert "X=3" not in out and "X=4" not in out
