"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


@pytest.fixture
def db_json(tmp_path):
    data = {
        "relations": [
            {
                "name": "items",
                "attributes": ["id", "category", "score"],
                "rows": [
                    [1, "a", 9],
                    [2, "a", 7],
                    [3, "b", 6],
                    [4, "b", 4],
                    [5, "c", 8],
                ],
            }
        ]
    }
    path = tmp_path / "db.json"
    path.write_text(json.dumps(data))
    return str(path)


class TestInformational:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "PSPACE-complete" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 4" in out
        assert "δ(t1, t2)" in out  # Figure 2 report

    def test_verify(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "10/10 reductions verified" in out
        assert "FAIL" not in out


class TestDiversify:
    def test_basic_run(self, db_json, capsys):
        code = main(
            [
                "diversify",
                "--db", db_json,
                "--query", "Q(X, C, S) :- items(X, C, S)",
                "-k", "3",
                "--objective", "max-sum",
                "--lambda", "0.5",
                "--relevance-attr", "S",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "F = " in out
        assert out.count("X=") == 3

    def test_mono_objective(self, db_json, capsys):
        code = main(
            [
                "diversify",
                "--db", db_json,
                "--query", "Q(X, C, S) :- items(X, C, S)",
                "-k", "2",
                "--objective", "mono",
                "--relevance-attr", "S",
                "--distance-attrs", "C",
            ]
        )
        assert code == 0
        assert "F_mono" in capsys.readouterr().out

    def test_greedy_method(self, db_json, capsys):
        code = main(
            [
                "diversify",
                "--db", db_json,
                "--query", "Q(X, C, S) :- items(X, C, S)",
                "-k", "2",
                "--method", "greedy",
            ]
        )
        assert code == 0

    def test_infeasible_k(self, db_json, capsys):
        code = main(
            [
                "diversify",
                "--db", db_json,
                "--query", "Q(X, C, S) :- items(X, C, S)",
                "-k", "99",
            ]
        )
        assert code == 1
        assert "no 99-subset" in capsys.readouterr().out

    def test_csv_directory(self, tmp_path, capsys):
        (tmp_path / "edge.csv").write_text("src,dst\n1,2\n2,3\n1,3\n")
        code = main(
            [
                "diversify",
                "--db", str(tmp_path),
                "--query", "Q(X, Y) :- edge(X, Y)",
                "-k", "2",
            ]
        )
        assert code == 0

    def test_query_with_filter(self, db_json, capsys):
        code = main(
            [
                "diversify",
                "--db", db_json,
                "--query", "Q(X, C, S) :- items(X, C, S), S >= 7",
                "-k", "2",
                "--relevance-attr", "S",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Only items with score ≥ 7 may appear (ids 1, 2, 5).
        assert "X=3" not in out and "X=4" not in out


class TestEngineDispatch:
    """The --algorithm / --cache-stats flags and the kernel-cache path."""

    BASE = [
        "diversify",
        "--query", "Q(X, C, S) :- items(X, C, S)",
        "-k", "3",
        "--objective", "max-sum",
        "--relevance-attr", "S",
    ]

    @pytest.fixture(autouse=True)
    def fresh_engine(self):
        from repro.engine import reset_default_engine

        yield reset_default_engine()

    @pytest.mark.parametrize(
        "algorithm",
        ["auto", "mmr", "greedy_max_sum", "greedy_marginal_max_sum",
         "branch_and_bound_max_sum", "exhaustive", "local_search"],
    )
    def test_algorithm_flag(self, db_json, capsys, algorithm):
        code = main(self.BASE + ["--db", db_json, "--algorithm", algorithm])
        assert code == 0
        out = capsys.readouterr().out
        assert f"algorithm {algorithm}" in out
        assert out.count("X=") == 3

    def test_algorithm_flag_rejects_unknown(self, db_json, capsys):
        code = main(self.BASE + ["--db", db_json, "--algorithm", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown algorithm" in err and "mmr" in err  # names listed

    def test_algorithm_objective_mismatch_fails_gracefully(self, db_json, capsys):
        code = main(self.BASE + ["--db", db_json, "--algorithm", "greedy_max_min"])
        assert code == 2
        assert "requires F_MM" in capsys.readouterr().err

    def test_cache_stats_flag(self, db_json, capsys):
        code = main(self.BASE + ["--db", db_json, "--cache-stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "kernel cache:" in out
        assert "misses=1" in out

    def test_second_identical_invocation_hits_kernel_cache(
        self, db_json, capsys, fresh_engine
    ):
        argv = self.BASE + ["--db", db_json, "--cache-stats"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "hits=0 misses=1" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        # Same process, same inputs: the session memo returns identical
        # (query, db, δ_rel, δ_dis) objects, so the engine serves the
        # cached ScoringKernel instead of re-materializing Q(D) scores.
        assert "hits=1 misses=1" in second
        assert fresh_engine.stats.hits == 1

    def test_edited_database_is_not_served_stale(self, db_json, capsys, tmp_path):
        argv = self.BASE + ["--db", db_json, "--cache-stats"]
        assert main(argv) == 0
        capsys.readouterr()
        data = json.loads(open(db_json).read())
        data["relations"][0]["rows"].append([6, "d", 10])
        import os
        import time

        with open(db_json, "w") as fh:
            fh.write(json.dumps(data))
        # Guarantee a fingerprint change even on coarse mtime clocks.
        stat = os.stat(db_json)
        os.utime(db_json, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "X=6" in out  # the new top-scoring row is picked up

    def test_cache_stats_on_infeasible_run(self, db_json, capsys):
        code = main(
            self.BASE[:3] + ["-k", "99", "--db", db_json, "--cache-stats"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "no 99-subset" in out
        assert "backend=n/a" in out


class TestJsonOutput:
    """The --json flag emits the DiversifyResponse wire form."""

    BASE = [
        "diversify",
        "--query", "Q(X, C, S) :- items(X, C, S)",
        "-k", "3",
        "--relevance-attr", "S",
        "--json",
    ]

    def test_json_payload_round_trips(self, db_json, capsys):
        from repro.api import DiversifyResponse

        code = main(self.BASE + ["--db", db_json])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        response = DiversifyResponse.from_dict(payload)
        assert response.feasible is True
        assert len(response.rows) == 3
        assert len(response.indices) == 3
        assert response.value is not None

    def test_json_with_cache_stats(self, db_json, capsys):
        code = main(self.BASE + ["--db", db_json, "--cache-stats"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel_cache"]["lookups"] >= 1

    def test_json_infeasible(self, db_json, capsys):
        code = main(self.BASE[:3] + ["-k", "99", "--db", db_json, "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is False
        assert payload["rows"] is None


class TestSharedEngineFlags:
    """diversify and serve share one EngineConfig flag set."""

    BASE = [
        "diversify",
        "--query", "Q(X, C, S) :- items(X, C, S)",
        "-k", "2",
        "--relevance-attr", "S",
    ]

    def test_storage_flags_route_through_config(self, db_json, capsys):
        code = main(
            self.BASE
            + ["--db", db_json, "--storage", "tiled", "--dtype", "float32",
               "--workers", "2"]
        )
        assert code == 0
        assert "F = " in capsys.readouterr().out

    def test_invalid_combination_rejected(self, db_json, capsys):
        code = main(
            self.BASE + ["--db", db_json, "--storage", "dense", "--dtype",
                         "float32"]
        )
        assert code == 2
        assert "float64-only" in capsys.readouterr().err

    def test_serve_parser_accepts_engine_flags(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--storage", "tiled", "--workers", "2",
             "--result-ttl", "5", "--no-coalesce"]
        )
        assert args.storage == "tiled"
        assert args.workers == 2
        assert args.result_ttl == 5.0
        assert args.no_coalesce is True
        assert args.func.__name__ == "_cmd_serve"

    def test_env_config_layering(self, db_json, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "tiled")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        code = main(self.BASE + ["--db", db_json, "--cache-stats"])
        assert code == 0
        assert "F = " in capsys.readouterr().out
